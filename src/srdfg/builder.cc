#include "srdfg/builder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string_view>
#include <vector>

#include "core/flat_map.h"
#include "obs/trace.h"
#include "pmlang/builtins.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"

namespace polymath::ir {

namespace {

using lang::ComponentDecl;
using lang::Expr;
using lang::ExprKind;
using lang::Modifier;
using lang::Stmt;
using lang::StmtKind;

/**
 * Small sorted set of variable names, viewing into the AST's strings
 * (which outlive every build). Iterates in the same lexicographic order
 * std::set<std::string> would, but with one flat buffer instead of a
 * node allocation per name — usedVars() runs on every interior
 * expression node, so this is on the frontend's hot path.
 */
struct VarSet
{
    std::vector<std::string_view> names;

    void insert(std::string_view s)
    {
        const auto it =
            std::lower_bound(names.begin(), names.end(), s);
        if (it == names.end() || *it != s)
            names.insert(it, s);
    }

    void erase(std::string_view s)
    {
        const auto it =
            std::lower_bound(names.begin(), names.end(), s);
        if (it != names.end() && *it == s)
            names.erase(it);
    }

    bool contains(std::string_view s) const
    {
        const auto it =
            std::lower_bound(names.begin(), names.end(), s);
        return it != names.end() && *it == s;
    }

    auto begin() const { return names.begin(); }
    auto end() const { return names.end(); }
    size_t size() const { return names.size(); }
};

/** What a name is bound to inside one component instantiation. */
struct Binding
{
    enum class Kind {
        Tensor, ///< runtime data: an SSA value in the frame's graph
        Const,  ///< compile-time scalar (literal-bound param / dim symbol)
    };

    Kind kind = Kind::Tensor;
    ValueId value = -1; ///< current SSA version; -1 for unwritten outputs
    Shape shape;
    DType dtype = DType::Float;
    EdgeKind ekind = EdgeKind::Internal;
    double cval = 0.0;
    bool isIntegral = false;
};

/** A declared index variable's inclusive range. */
struct IndexRange
{
    int64_t lo = 0;
    int64_t hi = -1;

    int64_t extent() const { return hi - lo + 1; }
};

/** Scope maps are flat sorted vectors viewing into AST strings; see
 *  core/flat_map.h for the lifetime contract. */
template <class T>
using FlatEnv = FlatStringMap<T>;

/** Active iteration context for one statement: ordered variables. */
struct VarContext
{
    std::vector<std::string> names;
    std::vector<IndexRange> ranges;

    int slotOf(const std::string &name) const
    {
        for (size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name)
                return static_cast<int>(i);
        }
        return -1;
    }
};

/** An argument passed to a component instantiation. */
struct ActualArg
{
    bool isConst = false;
    // Tensor case
    std::string name;
    ValueId value = -1;
    Shape shape;
    DType dtype = DType::Float;
    // Const case
    double cval = 0.0;
    bool isIntegral = false;
};

/** Per-instantiation build state. */
struct Frame
{
    Graph *graph = nullptr;
    const ComponentDecl *comp = nullptr;
    FlatEnv<Binding> env;
    FlatEnv<IndexRange> ranges;
    Domain dom = Domain::None;
};

/** A detached access under construction: coords as an owned vector,
 *  interned into the graph's coord arena only when attached to a node
 *  (emitted operands get remapped in place before attachment). */
struct AccessSpec
{
    ValueId value = -1;
    std::vector<IndexExpr> coords;

    bool isIndexOperand() const { return value == Access::kIndexOperand; }
};

/** Interns @p spec into @p g's arenas as an attachable access. */
Access
intern(Graph &g, const AccessSpec &spec)
{
    return g.makeAccess(spec.value, spec.coords);
}

/** Result of emitting an expression: an access relative to the emitting
 *  statement's full variable context. */
struct Operand
{
    AccessSpec access;
    DType dtype = DType::Float;
};

class GraphBuilder
{
  public:
    GraphBuilder(std::shared_ptr<const lang::Program> program,
                 std::shared_ptr<IrContext> context)
        : program_(std::move(program)), context_(std::move(context))
    {
    }

    std::unique_ptr<Graph> buildEntry(const std::string &entry,
                                      const std::map<std::string, int64_t>
                                          &param_consts);

  private:
    std::unique_ptr<Graph> buildComponent(const ComponentDecl &comp,
                                          std::vector<ActualArg> actuals,
                                          Domain dom);
    void buildBody(Frame &frame);
    void buildAssign(Frame &frame, const Stmt &stmt);
    void buildCall(Frame &frame, const Stmt &stmt);

    Operand emitExpr(Frame &frame, const Expr &e, const VarContext &ctx);
    Operand emitMapOp(Frame &frame, Op op,
                      std::vector<Operand> operands, DType dtype,
                      const VarContext &ctx, const VarSet &used);
    Operand emitReduce(Frame &frame, const Expr &e, const VarContext &ctx);
    Operand emitConstant(Frame &frame, double value, DType dtype);

    /** Translates PMLang index arithmetic to an IndexExpr over @p ctx. */
    IndexExpr translateIndex(const Frame &frame, const Expr &e,
                             const VarContext &ctx) const;

    /** Constant-evaluates an expression of params/dims/literals. */
    int64_t evalConstInt(const Frame &frame, const Expr &e) const;
    double evalConstScalar(const Frame &frame, const Expr &e) const;

    /** Index variables of the active context used in @p e (subtracting
     *  inner reduction axes). */
    void usedVars(const Frame &frame, const Expr &e, VarSet *out) const;

    /** Resolves formal dims against an actual shape, binding symbols. */
    void unifyDims(Frame &callee_frame, const lang::ArgDecl &formal,
                   const Shape &actual_shape) const;

    Shape resolveDims(const Frame &frame,
                      const std::vector<lang::ExprPtr> &dims) const;

    std::shared_ptr<const lang::Program> program_;
    std::shared_ptr<IrContext> context_;

    /** Memoized component instantiations. A subgraph depends only on the
     *  callee declaration, the instantiation domain, and each actual's
     *  constant value or tensor shape (outer names and value ids never
     *  cross the boundary), so repeated instantiations — DNN layers with
     *  identical shapes, per-axis controller blocks — are served by a
     *  Graph::clone() of the first build instead of a re-walk of the
     *  body. */
    std::map<std::string, std::unique_ptr<Graph>> subCache_;
};

/** Builds the memoization key for one instantiation. Constants are keyed
 *  by their exact bit pattern; tensors by their extents (the formal fixes
 *  rank and dtype). */
std::string
instantiationKey(const ComponentDecl &comp,
                 const std::vector<ActualArg> &actuals, Domain dom)
{
    std::string key;
    key.reserve(comp.name.size() + 2 + actuals.size() * 10);
    key += comp.name;
    key += '\x1f';
    key += static_cast<char>('0' + static_cast<int>(dom));
    for (const auto &a : actuals) {
        if (a.isConst) {
            key += a.isIntegral ? 'c' : 'f';
            uint64_t bits = 0;
            static_assert(sizeof(bits) == sizeof(a.cval));
            std::memcpy(&bits, &a.cval, sizeof(bits));
            key.append(reinterpret_cast<const char *>(&bits), sizeof(bits));
        } else {
            key += 't';
            for (const int64_t d : a.shape.dims()) {
                key += ':';
                key += std::to_string(d);
            }
        }
    }
    return key;
}

/** Maps PMLang binary operator spellings to srDFG op codes. */
OpCode
mapBinaryOp(const std::string &op)
{
    switch (lang::resolveBinaryOp(op)) {
      case lang::BinaryOp::Add: return OpCode::Add;
      case lang::BinaryOp::Sub: return OpCode::Sub;
      case lang::BinaryOp::Mul: return OpCode::Mul;
      case lang::BinaryOp::Div: return OpCode::Div;
      case lang::BinaryOp::Mod: return OpCode::Mod;
      case lang::BinaryOp::Pow: return OpCode::Pow;
      case lang::BinaryOp::Lt: return OpCode::Lt;
      case lang::BinaryOp::Le: return OpCode::Le;
      case lang::BinaryOp::Gt: return OpCode::Gt;
      case lang::BinaryOp::Ge: return OpCode::Ge;
      case lang::BinaryOp::Eq: return OpCode::Eq;
      case lang::BinaryOp::Ne: return OpCode::Ne;
      case lang::BinaryOp::And: return OpCode::And;
      case lang::BinaryOp::Or: return OpCode::Or;
    }
    panic("unknown binary operator " + op);
}

bool
isComparison(OpCode op)
{
    switch (op) {
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Not:
        return true;
      default:
        return false;
    }
}

std::unique_ptr<Graph>
GraphBuilder::buildEntry(const std::string &entry,
                         const std::map<std::string, int64_t> &param_consts)
{
    const ComponentDecl *comp = program_->findComponent(entry);
    if (!comp)
        fatal("entry component '" + entry + "' not found");

    // Synthesize actuals for the entry from its own signature: every
    // runtime argument becomes a graph input of the top-level srDFG.
    std::vector<ActualArg> actuals;
    for (const auto &arg : comp->args) {
        ActualArg actual;
        auto it = param_consts.find(arg.name);
        if (it != param_consts.end()) {
            if (arg.mod != Modifier::Param || !arg.dims.empty()) {
                fatal("paramConsts binding '" + arg.name +
                      "' must target a scalar param");
            }
            actual.isConst = true;
            actual.cval = static_cast<double>(it->second);
            actual.isIntegral = true;
        } else {
            actual.name = arg.name;
            actual.dtype = arg.type;
            // Dims must be compile-time constants at the entry. A frame
            // with no bindings suffices: only literals are resolvable.
            Frame empty;
            empty.comp = comp;
            std::vector<int64_t> dims;
            for (const auto &d : arg.dims)
                dims.push_back(evalConstInt(empty, *d));
            actual.shape = Shape(dims);
        }
        actuals.push_back(std::move(actual));
    }
    auto graph = buildComponent(*comp, std::move(actuals), Domain::None);
    graph->validate();
    return graph;
}

std::unique_ptr<Graph>
GraphBuilder::buildComponent(const ComponentDecl &comp,
                             std::vector<ActualArg> actuals, Domain dom)
{
    if (actuals.size() != comp.args.size())
        panic("actual/formal count mismatch for " + comp.name);

    auto graph = std::make_unique<Graph>();
    graph->name = comp.name;
    graph->domain = dom;
    graph->context = context_;

    Frame frame;
    frame.graph = graph.get();
    frame.comp = &comp;
    frame.dom = dom;

    // Bind formals. Two passes: constants/dim symbols first so tensor dims
    // that reference them resolve.
    for (size_t i = 0; i < comp.args.size(); ++i) {
        const auto &formal = comp.args[i];
        const auto &actual = actuals[i];
        if (actual.isConst) {
            Binding b;
            b.kind = Binding::Kind::Const;
            b.cval = actual.cval;
            b.isIntegral = actual.isIntegral;
            b.dtype = formal.type;
            frame.env[formal.name] = b;
        } else {
            unifyDims(frame, formal, actual.shape);
        }
    }
    for (size_t i = 0; i < comp.args.size(); ++i) {
        const auto &formal = comp.args[i];
        const auto &actual = actuals[i];
        if (actual.isConst)
            continue;
        Binding b;
        b.kind = Binding::Kind::Tensor;
        b.shape = actual.shape;
        b.dtype = formal.type;
        b.ekind = edgeKindFor(formal.mod);
        if (formal.mod == Modifier::Output) {
            b.value = -1; // produced by the body
        } else {
            EdgeMeta md;
            md.dtype = formal.type;
            md.kind = b.ekind;
            md.shape = actual.shape;
            md.name = formal.name;
            b.value = graph->addValue(md);
            graph->inputs.push_back(b.value);
        }
        frame.env[formal.name] = b;
    }

    buildBody(frame);

    // Boundary outputs: output formals then updated state versions. The
    // final SSA version takes on the formal's boundary role (an edge that
    // is `state` at the instantiation boundary was `internal` while the
    // body produced it — Section III-B's modifier change across levels).
    for (const auto &formal : comp.args) {
        if (formal.mod != Modifier::Output)
            continue;
        const Binding &b = frame.env[formal.name];
        if (b.value < 0)
            fatal("output '" + formal.name + "' never assigned",
                  formal.loc);
        graph->value(b.value).md.kind = EdgeKind::Output;
        graph->outputs.push_back(b.value);
    }
    for (const auto &formal : comp.args) {
        if (formal.mod != Modifier::State)
            continue;
        const ValueId v = frame.env[formal.name].value;
        graph->value(v).md.kind = EdgeKind::State;
        graph->outputs.push_back(v);
    }
    return graph;
}

void
GraphBuilder::unifyDims(Frame &frame, const lang::ArgDecl &formal,
                        const Shape &actual_shape) const
{
    if (static_cast<int>(formal.dims.size()) != actual_shape.rank()) {
        fatal("argument '" + formal.name + "' of '" + frame.comp->name +
                  "' expects rank " + std::to_string(formal.dims.size()) +
                  ", got " + actual_shape.str(),
              formal.loc);
    }
    for (size_t d = 0; d < formal.dims.size(); ++d) {
        const Expr &dim = *formal.dims[d];
        const int64_t extent = actual_shape.dim(static_cast<int>(d));
        if (dim.kind == ExprKind::Ref && dim.args.empty() &&
            !frame.env.count(dim.name)) {
            // Unbound symbolic dimension: bind it.
            Binding b;
            b.kind = Binding::Kind::Const;
            b.cval = static_cast<double>(extent);
            b.isIntegral = true;
            b.dtype = DType::Int;
            frame.env[dim.name] = b;
            continue;
        }
        const int64_t expected = evalConstInt(frame, dim);
        if (expected != extent) {
            fatal("dimension mismatch for '" + formal.name + "': declared " +
                      std::to_string(expected) + ", actual " +
                      std::to_string(extent),
                  formal.loc);
        }
    }
}

Shape
GraphBuilder::resolveDims(const Frame &frame,
                          const std::vector<lang::ExprPtr> &dims) const
{
    std::vector<int64_t> extents;
    for (const auto &d : dims)
        extents.push_back(evalConstInt(frame, *d));
    return Shape(extents);
}

void
GraphBuilder::buildBody(Frame &frame)
{
    for (const auto &stmt : frame.comp->body) {
        switch (stmt->kind) {
          case StmtKind::IndexDecl:
            for (const auto &spec : stmt->indexSpecs) {
                IndexRange r;
                r.lo = evalConstInt(frame, *spec.lo);
                r.hi = evalConstInt(frame, *spec.hi);
                if (r.extent() <= 0) {
                    fatal("index '" + spec.name + "' has empty range [" +
                              std::to_string(r.lo) + ":" +
                              std::to_string(r.hi) + "]",
                          spec.loc);
                }
                frame.ranges[spec.name] = r;
            }
            break;
          case StmtKind::VarDecl:
            for (const auto &decl : stmt->locals) {
                Binding b;
                b.kind = Binding::Kind::Tensor;
                b.shape = resolveDims(frame, decl.dims);
                b.dtype = stmt->declType;
                b.ekind = EdgeKind::Internal;
                b.value = -1;
                frame.env[decl.name] = b;
            }
            break;
          case StmtKind::Assign:
            buildAssign(frame, *stmt);
            break;
          case StmtKind::Call:
            buildCall(frame, *stmt);
            break;
        }
    }
}

void
GraphBuilder::buildAssign(Frame &frame, const Stmt &stmt)
{
    Binding &target = frame.env.at(stmt.target);

    // Statement iteration context: index variables in order of first
    // appearance in the LHS subscripts.
    VarContext ctx;
    VarSet seen;
    for (const auto &ix : stmt.targetIndices) {
        VarSet vars;
        usedVars(frame, *ix, &vars);
        // usedVars is sorted per subscript; dedup across subscripts while
        // keeping subscript order for the context.
        for (const auto &name : vars) {
            if (!seen.contains(name)) {
                seen.insert(name);
                ctx.names.emplace_back(name);
                ctx.ranges.push_back(frame.ranges.at(ctx.names.back()));
            }
        }
    }

    Operand rhs = emitExpr(frame, *stmt.value, ctx);

    // Full-write detection: every LHS subscript is a distinct bare index
    // variable covering its whole dimension.
    bool full_write = true;
    std::vector<IndexExpr> scatter;
    for (size_t d = 0; d < stmt.targetIndices.size(); ++d) {
        const Expr &ix = *stmt.targetIndices[d];
        IndexExpr translated = translateIndex(frame, ix, ctx);
        const bool bare =
            ix.kind == ExprKind::Ref && ix.args.empty() &&
            frame.ranges.count(ix.name) &&
            frame.ranges.at(ix.name).lo == 0 &&
            frame.ranges.at(ix.name).extent() ==
                target.shape.dim(static_cast<int>(d));
        if (!bare)
            full_write = false;
        scatter.push_back(std::move(translated));
    }
    if (full_write) {
        // Bare vars must also be pairwise distinct and cover the context.
        VarSet names;
        for (const auto &ix : stmt.targetIndices)
            names.insert(ix->name);
        full_write = names.size() == stmt.targetIndices.size() &&
                     names.size() == ctx.names.size();
    }
    if (stmt.targetIndices.empty())
        full_write = true; // scalar target

    EdgeMeta md;
    md.dtype = target.dtype;
    md.kind = EdgeKind::Internal;
    md.shape = target.shape;
    md.name = stmt.target;

    // Fuse the store into the producing node when the write is total and
    // the producer is a fresh intermediate over the same context.
    if (full_write && !rhs.access.isIndexOperand() && rhs.access.value >= 0) {
        Value &rv = frame.graph->value(rhs.access.value);
        if (rv.md.kind == EdgeKind::Internal && rv.md.name.empty() &&
            rv.producer >= 0) {
            Node *producer = frame.graph->node(rv.producer);
            const auto pouts =
                producer ? frame.graph->outs(*producer)
                         : std::span<const Access>{};
            const bool same_domain =
                producer && pouts.size() == 1 &&
                pouts[0].value == rhs.access.value &&
                producer->domainVarNames(*frame.graph) == ctx.names &&
                rv.md.shape == md.shape;
            bool identity_coords =
                static_cast<int>(rhs.access.coords.size()) ==
                md.shape.rank();
            for (size_t i = 0; identity_coords && i < rhs.access.coords.size();
                 ++i) {
                identity_coords =
                    rhs.access.coords[i].isIdentityVar(static_cast<int>(i));
            }
            if (same_domain && identity_coords) {
                md.dtype = rv.md.dtype; // copy before addValue invalidates rv
                const ValueId nv =
                    frame.graph->addValue(md, producer->id);
                // The fresh intermediate is orphaned; unlink its producer.
                frame.graph->value(rhs.access.value).producer = -1;
                frame.graph->outsMut(*producer)[0].value = nv;
                target.value = nv;
                target.dtype = md.dtype;
                return;
            }
        }
    }

    // Otherwise emit an explicit store node (gather+scatter move).
    Graph &g = *frame.graph;
    Node &store = *g.node(g.addNode(NodeKind::Map, OpCode::Identity));
    store.domain = frame.dom;
    for (size_t i = 0; i < ctx.names.size(); ++i) {
        g.addDomainVar(store,
                       IndexVar{ctx.names[i], ctx.ranges[i].extent(), false});
    }
    g.addInput(store, intern(g, rhs.access));
    if (!full_write)
        store.base = target.value; // may be -1: unwritten points read zero
    const ValueId nv = g.addValue(md, store.id);
    g.addOutput(store, g.makeAccess(nv, scatter));
    target.value = nv;
}

void
GraphBuilder::buildCall(Frame &frame, const Stmt &stmt)
{
    const ComponentDecl *callee = program_->findComponent(stmt.callee);
    if (!callee)
        panic("sema admitted unknown component " + stmt.callee);
    const Domain dom = stmt.domain != Domain::None ? stmt.domain : frame.dom;

    std::vector<ActualArg> actuals;
    std::vector<std::string> outer_names(callee->args.size());
    for (size_t i = 0; i < callee->args.size(); ++i) {
        const Expr &actual_expr = *stmt.callArgs[i];
        ActualArg actual;
        if (actual_expr.kind == ExprKind::Ref && actual_expr.args.empty() &&
            frame.env.count(actual_expr.name)) {
            const Binding &b = frame.env.at(actual_expr.name);
            if (b.kind == Binding::Kind::Const) {
                actual.isConst = true;
                actual.cval = b.cval;
                actual.isIntegral = b.isIntegral;
            } else {
                actual.name = actual_expr.name;
                actual.value = b.value;
                actual.shape = b.shape;
                actual.dtype = b.dtype;
                outer_names[i] = actual_expr.name;
            }
        } else {
            actual.isConst = true;
            if (callee->args[i].type == DType::Int) {
                actual.cval =
                    static_cast<double>(evalConstInt(frame, actual_expr));
                actual.isIntegral = true;
            } else {
                actual.cval = evalConstScalar(frame, actual_expr);
                actual.isIntegral =
                    actual.cval == std::floor(actual.cval);
            }
        }
        actuals.push_back(std::move(actual));
    }

    std::unique_ptr<Graph> sub;
    std::string key = instantiationKey(*callee, actuals, dom);
    if (const auto it = subCache_.find(key); it == subCache_.end()) {
        // First sighting: build, and leave a marker so a repeat knows to
        // populate the cache. Caching eagerly would charge every
        // single-use instantiation a clone that is never amortized.
        sub = buildComponent(*callee, actuals, dom);
        subCache_.emplace(std::move(key), nullptr);
    } else if (!it->second) {
        sub = buildComponent(*callee, actuals, dom);
        it->second = sub->clone();
    } else {
        sub = it->second->clone();
    }

    Node &call = *frame.graph->node(frame.graph->addNode(
        NodeKind::Component, Op::intern(callee->name)));
    call.domain = dom;

    // Bind outer values to subgraph inputs, positionally.
    size_t sub_in = 0;
    for (size_t i = 0; i < callee->args.size(); ++i) {
        const auto &formal = callee->args[i];
        if (actuals[i].isConst || formal.mod == Modifier::Output)
            continue;
        if (sub_in >= sub->inputs.size())
            panic("subgraph input underflow");
        const Binding &b = frame.env.at(outer_names[i]);
        if (b.value < 0) {
            fatal("'" + outer_names[i] + "' is read before assignment",
                  stmt.loc);
        }
        frame.graph->addInput(call, Access{b.value, {}});
        ++sub_in;
    }

    // Subgraph outputs: output formals in order, then state formals.
    auto bind_result = [&](const lang::ArgDecl &formal, size_t arg_pos) {
        Binding &outer = frame.env.at(outer_names[arg_pos]);
        EdgeMeta md;
        md.dtype = formal.type;
        md.kind = outer.ekind;
        md.shape = outer.shape;
        md.name = outer_names[arg_pos];
        const ValueId nv = frame.graph->addValue(md, call.id);
        frame.graph->addOutput(call, Access{nv, {}});
        outer.value = nv;
        outer.dtype = formal.type;
    };
    for (size_t i = 0; i < callee->args.size(); ++i) {
        if (callee->args[i].mod == Modifier::Output)
            bind_result(callee->args[i], i);
    }
    for (size_t i = 0; i < callee->args.size(); ++i) {
        if (callee->args[i].mod == Modifier::State)
            bind_result(callee->args[i], i);
    }
    call.subgraph = std::move(sub);
}

Operand
GraphBuilder::emitConstant(Frame &frame, double value, DType dtype)
{
    Node &node =
        *frame.graph->node(frame.graph->addNode(NodeKind::Constant,
                                                OpCode::Const));
    node.cval = value;
    EdgeMeta md;
    md.dtype = dtype;
    md.kind = EdgeKind::Internal;
    const ValueId v = frame.graph->addValue(md, node.id);
    frame.graph->addOutput(node, Access{v, {}});
    Operand op;
    op.access.value = v;
    op.dtype = dtype;
    return op;
}

Operand
GraphBuilder::emitExpr(Frame &frame, const Expr &e, const VarContext &ctx)
{
    switch (e.kind) {
      case ExprKind::Number:
        return emitConstant(frame, e.value,
                            e.isIntLit ? DType::Int : DType::Float);
      case ExprKind::Ref: {
        auto range_it = frame.ranges.find(e.name);
        if (range_it != frame.ranges.end()) {
            // Index variable used as data.
            const int slot = ctx.slotOf(e.name);
            if (slot < 0)
                fatal("index '" + e.name + "' unbound here", e.loc);
            IndexExpr ix = IndexExpr::var(slot);
            if (range_it->second.lo != 0) {
                ix = IndexExpr::binary(
                    IndexExpr::Kind::Add, std::move(ix),
                    IndexExpr::constant(range_it->second.lo));
            }
            Operand op;
            op.access.value = Access::kIndexOperand;
            op.access.coords.push_back(std::move(ix));
            op.dtype = DType::Int;
            return op;
        }
        const Binding &b = frame.env.at(e.name);
        if (b.kind == Binding::Kind::Const)
            return emitConstant(frame, b.cval,
                                b.isIntegral ? DType::Int : DType::Float);
        if (b.value < 0)
            fatal("'" + e.name + "' is read before assignment", e.loc);
        Operand op;
        op.access.value = b.value;
        for (const auto &ix : e.args)
            op.access.coords.push_back(translateIndex(frame, *ix, ctx));
        op.dtype = b.dtype;
        return op;
      }
      case ExprKind::Unary: {
        VarSet used;
        usedVars(frame, e, &used);
        std::vector<Operand> operands;
        operands.push_back(emitExpr(frame, *e.lhs, ctx));
        const bool is_neg =
            lang::resolveUnaryOp(e.op) == lang::UnaryOp::Neg;
        const OpCode op = is_neg ? OpCode::Neg : OpCode::Not;
        DType dt = is_neg ? operands[0].dtype : DType::Bin;
        return emitMapOp(frame, op, std::move(operands), dt, ctx, used);
      }
      case ExprKind::Binary: {
        VarSet used;
        usedVars(frame, e, &used);
        std::vector<Operand> operands;
        operands.push_back(emitExpr(frame, *e.lhs, ctx));
        operands.push_back(emitExpr(frame, *e.rhs, ctx));
        const OpCode op = mapBinaryOp(e.op);
        DType dt;
        if (isComparison(op)) {
            dt = DType::Bin;
        } else {
            dt = promote(operands[0].dtype, operands[1].dtype);
            if (op == OpCode::Div && dt == DType::Int)
                dt = DType::Float; // PMLang '/' is real division on data
        }
        return emitMapOp(frame, op, std::move(operands), dt, ctx, used);
      }
      case ExprKind::Ternary: {
        VarSet used;
        usedVars(frame, e, &used);
        std::vector<Operand> operands;
        operands.push_back(emitExpr(frame, *e.lhs, ctx));
        operands.push_back(emitExpr(frame, *e.rhs, ctx));
        operands.push_back(emitExpr(frame, *e.third, ctx));
        const DType dt = promote(operands[1].dtype, operands[2].dtype);
        return emitMapOp(frame, OpCode::Select, std::move(operands), dt,
                         ctx, used);
      }
      case ExprKind::Call: {
        VarSet used;
        usedVars(frame, e, &used);
        std::vector<Operand> operands;
        for (const auto &a : e.args)
            operands.push_back(emitExpr(frame, *a, ctx));
        DType dt = operands[0].dtype;
        for (const auto &o : operands)
            dt = promote(dt, o.dtype);
        if (dt == DType::Int || dt == DType::Bin)
            dt = DType::Float; // transcendental results are real
        // re/im/abs project complex operands onto the reals.
        if (dt == DType::Complex &&
            (e.name == "re" || e.name == "im" || e.name == "abs")) {
            dt = DType::Float;
        }
        return emitMapOp(frame, Op::intern(e.name), std::move(operands),
                         dt, ctx, used);
      }
      case ExprKind::Reduce:
        return emitReduce(frame, e, ctx);
    }
    panic("unhandled ExprKind");
}

Operand
GraphBuilder::emitMapOp(Frame &frame, Op op,
                        std::vector<Operand> operands, DType dtype,
                        const VarContext &ctx, const VarSet &used)
{
    // The node's domain is the subset of the context its subtree uses,
    // in context order (keeps op counts exact, e.g. the inner dot product
    // of a logistic-regression update does not iterate the outer axes).
    Graph &g = *frame.graph;
    Node &node = *g.node(g.addNode(NodeKind::Map, op));
    node.domain = frame.dom;
    std::vector<int> remap(ctx.names.size(), -1);
    std::vector<int64_t> extents;
    int nvars = 0;
    for (size_t i = 0; i < ctx.names.size(); ++i) {
        if (!used.contains(ctx.names[i]))
            continue;
        remap[i] = nvars++;
        g.addDomainVar(node,
                       IndexVar{ctx.names[i], ctx.ranges[i].extent(), false});
        extents.push_back(ctx.ranges[i].extent());
    }
    for (auto &operand : operands) {
        AccessSpec a = std::move(operand.access);
        for (auto &c : a.coords)
            c = c.remapped(remap);
        g.addInput(node, intern(g, a));
    }

    EdgeMeta md;
    md.dtype = dtype;
    md.kind = EdgeKind::Internal;
    md.shape = Shape(extents);
    const ValueId v = g.addValue(md, node.id);
    std::vector<IndexExpr> out_coords;
    for (int i = 0; i < nvars; ++i)
        out_coords.push_back(IndexExpr::var(i));
    g.addOutput(node, g.makeAccess(v, out_coords));

    // The consumer sees this intermediate through identity coords over the
    // node's variables, expressed in the consumer's (full) context.
    Operand out;
    out.access.value = v;
    for (size_t i = 0; i < ctx.names.size(); ++i) {
        if (remap[i] >= 0)
            out.access.coords.push_back(
                IndexExpr::var(static_cast<int>(i)));
    }
    // Coordinates must be ordered by the node's own variable order, which
    // matches context order by construction.
    out.dtype = dtype;
    return out;
}

Operand
GraphBuilder::emitReduce(Frame &frame, const Expr &e, const VarContext &ctx)
{
    // Extended context: outer vars plus this reduction's axes.
    VarContext inner = ctx;
    for (const auto &axis : e.axes) {
        if (inner.slotOf(axis.index) >= 0)
            fatal("axis '" + axis.index + "' already bound", axis.loc);
        inner.names.push_back(axis.index);
        inner.ranges.push_back(frame.ranges.at(axis.index));
    }

    Operand body = emitExpr(frame, *e.body, inner);

    // Node domain: used free vars (in ctx order) then all axes.
    VarSet used;
    usedVars(frame, *e.body, &used);
    for (const auto &axis : e.axes) {
        used.insert(axis.index);
        if (axis.cond)
            usedVars(frame, *axis.cond, &used);
    }

    Graph &g = *frame.graph;
    Node &node = *g.node(g.addNode(NodeKind::Reduce, Op::intern(e.name)));
    node.domain = frame.dom;
    std::vector<int> remap(inner.names.size(), -1);
    VarSet axis_names;
    for (const auto &axis : e.axes)
        axis_names.insert(axis.index);
    std::vector<int64_t> free_extents;
    std::vector<bool> slot_reduced;
    for (size_t i = 0; i < inner.names.size(); ++i) {
        if (!used.contains(inner.names[i]))
            continue;
        const bool reduced = axis_names.contains(inner.names[i]);
        remap[i] = static_cast<int>(slot_reduced.size());
        slot_reduced.push_back(reduced);
        g.addDomainVar(node, IndexVar{inner.names[i],
                                      inner.ranges[i].extent(), reduced});
        if (!reduced)
            free_extents.push_back(inner.ranges[i].extent());
    }
    AccessSpec in = std::move(body.access);
    for (auto &c : in.coords)
        c = c.remapped(remap);
    g.addInput(node, intern(g, in));

    // Guard: conjunction of axis conditions.
    bool has_pred = false;
    IndexExpr pred;
    for (const auto &axis : e.axes) {
        if (!axis.cond)
            continue;
        IndexExpr c = translateIndex(frame, *axis.cond, inner);
        c = c.remapped(remap);
        pred = has_pred
                   ? IndexExpr::binary(IndexExpr::Kind::And, std::move(pred),
                                       std::move(c))
                   : std::move(c);
        has_pred = true;
    }
    node.predicate = std::move(pred);
    node.hasPredicate = has_pred;

    DType dt = body.dtype;
    if (dt == DType::Bin)
        dt = DType::Int; // counting semantics for sums of booleans

    EdgeMeta md;
    md.dtype = dt;
    md.kind = EdgeKind::Internal;
    md.shape = Shape(free_extents);
    const ValueId v = g.addValue(md, node.id);
    std::vector<IndexExpr> out_coords;
    for (size_t i = 0; i < slot_reduced.size(); ++i) {
        if (!slot_reduced[i])
            out_coords.push_back(IndexExpr::var(static_cast<int>(i)));
    }
    g.addOutput(node, g.makeAccess(v, out_coords));

    Operand out;
    out.access.value = v;
    for (size_t i = 0; i < ctx.names.size(); ++i) {
        if (static_cast<size_t>(i) < remap.size() && remap[i] >= 0 &&
            !axis_names.contains(ctx.names[i])) {
            out.access.coords.push_back(IndexExpr::var(static_cast<int>(i)));
        }
    }
    out.dtype = dt;
    return out;
}

IndexExpr
GraphBuilder::translateIndex(const Frame &frame, const Expr &e,
                             const VarContext &ctx) const
{
    switch (e.kind) {
      case ExprKind::Number:
        if (!e.isIntLit && e.value != std::floor(e.value))
            fatal("non-integer literal in index arithmetic", e.loc);
        return IndexExpr::constant(static_cast<int64_t>(e.value));
      case ExprKind::Ref: {
        auto range_it = frame.ranges.find(e.name);
        if (range_it != frame.ranges.end()) {
            const int slot = ctx.slotOf(e.name);
            if (slot < 0)
                fatal("index '" + e.name + "' unbound here", e.loc);
            IndexExpr v = IndexExpr::var(slot);
            if (range_it->second.lo != 0) {
                v = IndexExpr::binary(IndexExpr::Kind::Add, std::move(v),
                                      IndexExpr::constant(
                                          range_it->second.lo));
            }
            return v;
        }
        const auto it = frame.env.find(e.name);
        if (it == frame.env.end())
            fatal("unknown name '" + e.name + "' in index arithmetic",
                  e.loc);
        if (it->second.kind != Binding::Kind::Const ||
            !it->second.isIntegral) {
            fatal("'" + e.name +
                      "' is not a compile-time integer; bind it via a "
                      "literal param or paramConsts",
                  e.loc);
        }
        return IndexExpr::constant(static_cast<int64_t>(it->second.cval));
      }
      case ExprKind::Unary: {
        const auto kind =
            lang::resolveUnaryOp(e.op) == lang::UnaryOp::Neg
                ? IndexExpr::Kind::Neg
                : IndexExpr::Kind::Not;
        return IndexExpr::unary(kind, translateIndex(frame, *e.lhs, ctx));
      }
      case ExprKind::Binary: {
        IndexExpr::Kind kind;
        switch (lang::resolveBinaryOp(e.op)) {
          case lang::BinaryOp::Add: kind = IndexExpr::Kind::Add; break;
          case lang::BinaryOp::Sub: kind = IndexExpr::Kind::Sub; break;
          case lang::BinaryOp::Mul: kind = IndexExpr::Kind::Mul; break;
          case lang::BinaryOp::Div: kind = IndexExpr::Kind::Div; break;
          case lang::BinaryOp::Mod: kind = IndexExpr::Kind::Mod; break;
          case lang::BinaryOp::Lt: kind = IndexExpr::Kind::Lt; break;
          case lang::BinaryOp::Le: kind = IndexExpr::Kind::Le; break;
          case lang::BinaryOp::Gt: kind = IndexExpr::Kind::Gt; break;
          case lang::BinaryOp::Ge: kind = IndexExpr::Kind::Ge; break;
          case lang::BinaryOp::Eq: kind = IndexExpr::Kind::Eq; break;
          case lang::BinaryOp::Ne: kind = IndexExpr::Kind::Ne; break;
          case lang::BinaryOp::And: kind = IndexExpr::Kind::And; break;
          case lang::BinaryOp::Or: kind = IndexExpr::Kind::Or; break;
          default:
            fatal("operator '" + e.op +
                      "' not allowed in index arithmetic",
                  e.loc);
        }
        return IndexExpr::binary(kind, translateIndex(frame, *e.lhs, ctx),
                                 translateIndex(frame, *e.rhs, ctx));
      }
      case ExprKind::Ternary:
        return IndexExpr::select(translateIndex(frame, *e.lhs, ctx),
                                 translateIndex(frame, *e.rhs, ctx),
                                 translateIndex(frame, *e.third, ctx));
      case ExprKind::Call:
      case ExprKind::Reduce:
        fatal("function calls are not allowed in index arithmetic", e.loc);
    }
    panic("unhandled ExprKind");
}

int64_t
GraphBuilder::evalConstInt(const Frame &frame, const Expr &e) const
{
    const double v = evalConstScalar(frame, e);
    if (v != std::floor(v))
        fatal("expected integer constant", e.loc);
    return static_cast<int64_t>(v);
}

double
GraphBuilder::evalConstScalar(const Frame &frame, const Expr &e) const
{
    switch (e.kind) {
      case ExprKind::Number:
        return e.value;
      case ExprKind::Ref: {
        const auto it = frame.env.find(e.name);
        if (it == frame.env.end() ||
            it->second.kind != Binding::Kind::Const) {
            fatal("'" + e.name + "' is not a compile-time constant", e.loc);
        }
        return it->second.cval;
      }
      case ExprKind::Unary:
        if (lang::resolveUnaryOp(e.op) == lang::UnaryOp::Neg)
            return -evalConstScalar(frame, *e.lhs);
        return evalConstScalar(frame, *e.lhs) == 0.0 ? 1.0 : 0.0;
      case ExprKind::Binary: {
        const double a = evalConstScalar(frame, *e.lhs);
        const double b = evalConstScalar(frame, *e.rhs);
        switch (lang::resolveBinaryOp(e.op)) {
          case lang::BinaryOp::Add: return a + b;
          case lang::BinaryOp::Sub: return a - b;
          case lang::BinaryOp::Mul: return a * b;
          case lang::BinaryOp::Div:
            if (b == 0.0)
                fatal("division by zero in constant expression", e.loc);
            // Integer semantics when both sides are integral.
            if (a == std::floor(a) && b == std::floor(b))
                return std::trunc(a / b);
            return a / b;
          case lang::BinaryOp::Mod:
            if (b == 0.0)
                fatal("modulo by zero in constant expression", e.loc);
            return static_cast<double>(static_cast<int64_t>(a) %
                                       static_cast<int64_t>(b));
          case lang::BinaryOp::Pow: return std::pow(a, b);
          default:
            fatal("operator '" + e.op +
                      "' not allowed in constant expression",
                  e.loc);
        }
      }
      case ExprKind::Ternary:
        return evalConstScalar(frame, *e.lhs) != 0.0
                   ? evalConstScalar(frame, *e.rhs)
                   : evalConstScalar(frame, *e.third);
      case ExprKind::Call:
      case ExprKind::Reduce:
        fatal("calls are not allowed in constant expressions", e.loc);
    }
    panic("unhandled ExprKind");
}

void
GraphBuilder::usedVars(const Frame &frame, const Expr &e, VarSet *out) const
{
    switch (e.kind) {
      case ExprKind::Number:
        return;
      case ExprKind::Ref:
        if (e.args.empty() && frame.ranges.count(e.name)) {
            out->insert(e.name);
            return;
        }
        for (const auto &ix : e.args)
            usedVars(frame, *ix, out);
        return;
      case ExprKind::Unary:
        usedVars(frame, *e.lhs, out);
        return;
      case ExprKind::Binary:
        usedVars(frame, *e.lhs, out);
        usedVars(frame, *e.rhs, out);
        return;
      case ExprKind::Ternary:
        usedVars(frame, *e.lhs, out);
        usedVars(frame, *e.rhs, out);
        usedVars(frame, *e.third, out);
        return;
      case ExprKind::Call:
        for (const auto &a : e.args)
            usedVars(frame, *a, out);
        return;
      case ExprKind::Reduce: {
        VarSet inner;
        usedVars(frame, *e.body, &inner);
        for (const auto &axis : e.axes) {
            if (axis.cond)
                usedVars(frame, *axis.cond, &inner);
            inner.erase(axis.index);
        }
        for (const auto &name : inner)
            out->insert(name);
        return;
      }
    }
    panic("unhandled ExprKind");
}

} // namespace

std::unique_ptr<Graph>
buildSrdfg(std::shared_ptr<const lang::Program> program,
           const BuildOptions &options)
{
    obs::Span span("srdfg:build", "frontend");
    span.arg("entry", options.entry);
    auto context = std::make_shared<IrContext>();
    context->program = program;
    for (const auto &red : program->reductions)
        context->reductions[red.name] = &red;
    GraphBuilder builder(std::move(program), context);
    return builder.buildEntry(options.entry, options.paramConsts);
}

std::unique_ptr<Graph>
compileToSrdfg(const std::string &source, const BuildOptions &options)
{
    auto program =
        std::make_shared<const lang::Program>(lang::parse(source));
    lang::analyze(*program, options.entry);
    return buildSrdfg(std::move(program), options);
}

} // namespace polymath::ir
