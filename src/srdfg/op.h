/**
 * @file
 * Interned srDFG operation names.
 *
 * `Op` is a value type replacing the old `std::string Node::op`: every
 * builtin scalar/group operation is an `OpCode` enumerator, and custom
 * reduction names / component names are interned symbols (a small id
 * into a process-wide append-only table). Equality, hashing, and
 * ordering are integer operations; `str()` returns today's exact
 * spelling so printed srDFGs, serialized graphs, and reports are
 * byte-identical to the string representation. Two ops with different
 * source spellings stay distinct even when their semantics coincide
 * (e.g. `ln` and `log` both resolve to ScalarOp::Ln but print as
 * written).
 *
 * The interner is thread-safe (compiles run under the -jN suite driver)
 * and append-only, so `const std::string &` references it hands out stay
 * valid for the life of the process.
 */
#ifndef POLYMATH_SRDFG_OP_H_
#define POLYMATH_SRDFG_OP_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace polymath::ir {

/** Every builtin operation name the stack knows statically: map-level
 *  scalar ops, group reductions, and the two structural ops ("const",
 *  "identity"). `Symbol` marks an interned custom name. */
enum class OpCode : uint8_t {
    // Structural.
    Const, Identity,
    // Binary arithmetic.
    Add, Sub, Mul, Div, Mod, Pow,
    // Comparisons and logic.
    Lt, Le, Gt, Ge, Eq, Ne, And, Or, Not,
    // Unary math. Ln and Log share semantics but keep their spellings.
    Neg, Sin, Cos, Tan, Exp, Ln, Log, Sqrt, Abs, Sigmoid, Relu, Tanh,
    Erf, Sign, Floor, Ceil, Gauss, Re, Im, Conj,
    // Binary min/max/select (min/max double as group reductions).
    Min, Max, Select,
    // Group reductions (sum/prod only reduce; min/max reuse Min/Max).
    Sum, Prod,
    // Custom reduction or component name; the spelling is interned.
    Symbol,
};

constexpr int kOpCodeCount = static_cast<int>(OpCode::Symbol);

/** An interned operation name. Cheap to copy/compare/hash. */
class Op
{
  public:
    /** Default: OpCode::Const (a valid op; Node default-initializes). */
    constexpr Op() = default;

    /** A builtin. @p code must not be OpCode::Symbol (use intern()). */
    constexpr Op(OpCode code) : code_(code) {}

    /** Resolves @p name: builtin spellings map to their OpCode, anything
     *  else is interned as a symbol. Never fails. */
    static Op intern(std::string_view name);

    OpCode code() const { return code_; }
    bool isSymbol() const { return code_ == OpCode::Symbol; }

    /** Interned symbol id; only meaningful when isSymbol(). */
    uint32_t symbolId() const { return sym_; }

    /** The spelling, exactly as written in the source/serialized form. */
    const std::string &str() const;

    /** Dense integer encoding for hashing / CSE key tuples: builtins are
     *  their code, symbols are kOpCodeCount + id. */
    int64_t bits() const
    {
        return isSymbol()
                   ? static_cast<int64_t>(kOpCodeCount) + sym_
                   : static_cast<int64_t>(code_);
    }

    friend bool operator==(Op a, Op b)
    {
        return a.code_ == b.code_ && a.sym_ == b.sym_;
    }
    friend bool operator!=(Op a, Op b) { return !(a == b); }
    friend bool operator==(Op a, OpCode c) { return a.code_ == c; }
    friend bool operator!=(Op a, OpCode c) { return a.code_ != c; }
    friend bool operator<(Op a, Op b) { return a.bits() < b.bits(); }

  private:
    OpCode code_ = OpCode::Const;
    uint32_t sym_ = 0;
};

/** The spelling of @p op (same reference str() returns). */
const std::string &toString(Op op);

/** Streams the spelling (diagnostics and test-failure messages). */
std::ostream &operator<<(std::ostream &os, Op op);

/** Number of inputs @p op expects at the Map level (1, 2, or 3);
 *  0 for ops that are not map-level builtins. */
int mapOpArity(Op op);

/** True when @p op is a memory-movement-only op (identity). */
inline bool
isMoveOp(Op op)
{
    return op.code() == OpCode::Identity;
}

/** True for the builtin group reductions (sum/prod/max/min). */
inline bool
isBuiltinReductionOp(Op op)
{
    switch (op.code()) {
      case OpCode::Sum:
      case OpCode::Prod:
      case OpCode::Max:
      case OpCode::Min:
        return true;
      default:
        return false;
    }
}

/**
 * A set of operations: a bitset over OpCode for builtins plus a spillover
 * set of interned symbol ids for custom names. Replaces the
 * `std::set<std::string>` Ot sets of the accelerator specs — membership
 * is one shift/mask for builtins.
 */
class OpSet
{
  public:
    OpSet() = default;
    OpSet(std::initializer_list<Op> ops)
    {
        for (Op op : ops)
            insert(op);
    }

    void insert(Op op)
    {
        if (op.isSymbol())
            syms_.insert(op.symbolId());
        else
            bits_ |= uint64_t{1} << static_cast<int>(op.code());
    }

    /** Convenience for spec construction from name literals. */
    void insert(std::string_view name) { insert(Op::intern(name)); }

    bool contains(Op op) const
    {
        if (op.isSymbol())
            return syms_.count(op.symbolId()) > 0;
        return (bits_ >> static_cast<int>(op.code())) & 1;
    }

    bool empty() const { return bits_ == 0 && syms_.empty(); }
    size_t size() const;

    /** True when every member of @p other is also in this set (subset
     *  test; one mask for the builtins). */
    bool containsAll(const OpSet &other) const
    {
        if ((other.bits_ & ~bits_) != 0)
            return false;
        for (const uint32_t sym : other.syms_) {
            if (syms_.count(sym) == 0)
                return false;
        }
        return true;
    }

    /** Union with @p other, in place. */
    void merge(const OpSet &other)
    {
        bits_ |= other.bits_;
        syms_.insert(other.syms_.begin(), other.syms_.end());
    }

    /** All member spellings in lexicographic order — the same order the
     *  old std::set<std::string> iterated in, so compile-cache keys and
     *  any rendered op lists are stable across the migration. */
    std::vector<std::string> sortedNames() const;

  private:
    uint64_t bits_ = 0;
    std::set<uint32_t> syms_;
};

/** Merged copy of @p a and @p b. */
inline OpSet
opSetUnion(OpSet a, const OpSet &b)
{
    a.merge(b);
    return a;
}

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_OP_H_
