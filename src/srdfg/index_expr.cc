#include "srdfg/index_expr.h"

#include <algorithm>

#include "core/error.h"

namespace polymath::ir {

std::shared_ptr<const std::vector<IndexExpr>>
IndexExpr::share(std::vector<IndexExpr> kids)
{
    if (kids.empty())
        return nullptr;
    return std::make_shared<const std::vector<IndexExpr>>(std::move(kids));
}

IndexExpr
IndexExpr::constant(int64_t value)
{
    IndexExpr e;
    e.kind_ = Kind::Const;
    e.cval_ = value;
    return e;
}

IndexExpr
IndexExpr::var(int slot)
{
    if (slot < 0)
        panic("IndexExpr::var(): negative slot");
    IndexExpr e;
    e.kind_ = Kind::Var;
    e.slot_ = slot;
    e.vars_ = slot + 1;
    return e;
}

IndexExpr
IndexExpr::unary(Kind kind, IndexExpr operand)
{
    if (kind != Kind::Neg && kind != Kind::Not)
        panic("IndexExpr::unary(): bad kind");
    IndexExpr e;
    e.kind_ = kind;
    e.vars_ = operand.vars_;
    std::vector<IndexExpr> kids;
    kids.reserve(1);
    kids.push_back(std::move(operand));
    e.children_ = share(std::move(kids));
    return e;
}

IndexExpr
IndexExpr::binary(Kind kind, IndexExpr lhs, IndexExpr rhs)
{
    switch (kind) {
      case Kind::Add: case Kind::Sub: case Kind::Mul: case Kind::Div:
      case Kind::Mod: case Kind::Lt: case Kind::Le: case Kind::Gt:
      case Kind::Ge: case Kind::Eq: case Kind::Ne: case Kind::And:
      case Kind::Or:
        break;
      default:
        panic("IndexExpr::binary(): bad kind");
    }
    IndexExpr e;
    e.kind_ = kind;
    e.vars_ = std::max(lhs.vars_, rhs.vars_);
    std::vector<IndexExpr> kids;
    kids.reserve(2);
    kids.push_back(std::move(lhs));
    kids.push_back(std::move(rhs));
    e.children_ = share(std::move(kids));
    return e;
}

IndexExpr
IndexExpr::select(IndexExpr cond, IndexExpr then_e, IndexExpr else_e)
{
    IndexExpr e;
    e.kind_ = Kind::Select;
    e.vars_ = std::max({cond.vars_, then_e.vars_, else_e.vars_});
    std::vector<IndexExpr> kids;
    kids.reserve(3);
    kids.push_back(std::move(cond));
    kids.push_back(std::move(then_e));
    kids.push_back(std::move(else_e));
    e.children_ = share(std::move(kids));
    return e;
}

int64_t
IndexExpr::eval(std::span<const int64_t> env) const
{
    switch (kind_) {
      case Kind::Const:
        return cval_;
      case Kind::Var:
        if (static_cast<size_t>(slot_) >= env.size())
            panic("IndexExpr::eval(): var slot out of range");
        return env[static_cast<size_t>(slot_)];
      case Kind::Add: return child(0).eval(env) + child(1).eval(env);
      case Kind::Sub: return child(0).eval(env) - child(1).eval(env);
      case Kind::Mul: return child(0).eval(env) * child(1).eval(env);
      case Kind::Div: {
        const int64_t d = child(1).eval(env);
        if (d == 0)
            fatal("division by zero in index arithmetic");
        return child(0).eval(env) / d;
      }
      case Kind::Mod: {
        const int64_t d = child(1).eval(env);
        if (d == 0)
            fatal("modulo by zero in index arithmetic");
        return child(0).eval(env) % d;
      }
      case Kind::Neg: return -child(0).eval(env);
      case Kind::Lt: return child(0).eval(env) < child(1).eval(env);
      case Kind::Le: return child(0).eval(env) <= child(1).eval(env);
      case Kind::Gt: return child(0).eval(env) > child(1).eval(env);
      case Kind::Ge: return child(0).eval(env) >= child(1).eval(env);
      case Kind::Eq: return child(0).eval(env) == child(1).eval(env);
      case Kind::Ne: return child(0).eval(env) != child(1).eval(env);
      case Kind::And:
        return child(0).eval(env) != 0 && child(1).eval(env) != 0;
      case Kind::Or:
        return child(0).eval(env) != 0 || child(1).eval(env) != 0;
      case Kind::Not: return child(0).eval(env) == 0;
      case Kind::Select:
        return child(0).eval(env) != 0 ? child(1).eval(env)
                                       : child(2).eval(env);
    }
    panic("unhandled IndexExpr kind");
}

IndexExpr
IndexExpr::remapped(std::span<const int> map) const
{
    if (kind_ == Kind::Var) {
        if (static_cast<size_t>(slot_) >= map.size())
            panic("IndexExpr::remapped(): slot out of range");
        return var(map[static_cast<size_t>(slot_)]);
    }
    if (!children_)
        return *this; // Const: nothing to remap
    IndexExpr e;
    e.kind_ = kind_;
    e.cval_ = cval_;
    e.slot_ = slot_;
    std::vector<IndexExpr> kids;
    kids.reserve(children_->size());
    for (const auto &c : *children_) {
        kids.push_back(c.remapped(map));
        e.vars_ = std::max(e.vars_, kids.back().vars_);
    }
    e.children_ = share(std::move(kids));
    return e;
}

IndexExpr
IndexExpr::substituted(std::span<const IndexExpr> exprs) const
{
    if (kind_ == Kind::Var) {
        if (static_cast<size_t>(slot_) >= exprs.size())
            panic("IndexExpr::substituted(): slot out of range");
        return exprs[static_cast<size_t>(slot_)];
    }
    if (!children_)
        return *this; // Const: nothing to substitute
    IndexExpr e;
    e.kind_ = kind_;
    e.cval_ = cval_;
    e.slot_ = slot_;
    std::vector<IndexExpr> kids;
    kids.reserve(children_->size());
    for (const auto &c : *children_) {
        kids.push_back(c.substituted(exprs));
        e.vars_ = std::max(e.vars_, kids.back().vars_);
    }
    e.children_ = share(std::move(kids));
    return e;
}

bool
IndexExpr::isIdentityVar(int slot) const
{
    return kind_ == Kind::Var && slot_ == slot;
}

std::string
IndexExpr::str(std::span<const std::string> names) const
{
    auto name_of = [&](int slot) {
        if (static_cast<size_t>(slot) < names.size())
            return names[static_cast<size_t>(slot)];
        return "v" + std::to_string(slot);
    };
    auto bin = [&](const char *op) {
        return "(" + child(0).str(names) + op + child(1).str(names) + ")";
    };
    switch (kind_) {
      case Kind::Const: return std::to_string(cval_);
      case Kind::Var: return name_of(slot_);
      case Kind::Add: return bin(" + ");
      case Kind::Sub: return bin(" - ");
      case Kind::Mul: return bin("*");
      case Kind::Div: return bin("/");
      case Kind::Mod: return bin("%");
      case Kind::Neg: return "-" + child(0).str(names);
      case Kind::Lt: return bin(" < ");
      case Kind::Le: return bin(" <= ");
      case Kind::Gt: return bin(" > ");
      case Kind::Ge: return bin(" >= ");
      case Kind::Eq: return bin(" == ");
      case Kind::Ne: return bin(" != ");
      case Kind::And: return bin(" && ");
      case Kind::Or: return bin(" || ");
      case Kind::Not: return "!" + child(0).str(names);
      case Kind::Select:
        return "(" + child(0).str(names) + " ? " + child(1).str(names) +
               " : " + child(2).str(names) + ")";
    }
    panic("unhandled IndexExpr kind");
}

bool
IndexExpr::operator==(const IndexExpr &other) const
{
    if (kind_ != other.kind_ || cval_ != other.cval_ ||
        slot_ != other.slot_)
        return false;
    if (children_ == other.children_)
        return true; // shared subtree (or both leaves)
    return children() == other.children();
}

} // namespace polymath::ir
