#include "srdfg/op.h"

#include <deque>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>

#include "core/error.h"

namespace polymath::ir {

namespace {

/** Spelling per OpCode, indexed by the enumerator value. These are the
 *  exact strings the old `std::string Node::op` representation carried,
 *  so every printed/serialized form is byte-identical. */
const std::string kOpNames[kOpCodeCount] = {
    "const", "identity",
    "add", "sub", "mul", "div", "mod", "pow",
    "lt", "le", "gt", "ge", "eq", "ne", "and", "or", "not",
    "neg", "sin", "cos", "tan", "exp", "ln", "log", "sqrt", "abs",
    "sigmoid", "relu", "tanh", "erf", "sign", "floor", "ceil", "gauss",
    "re", "im", "conj",
    "min", "max", "select",
    "sum", "prod",
};

static_assert(kOpCodeCount <= 64, "OpSet packs builtins into a uint64_t");

/** Map-level input count per OpCode; 0 for non-map builtins (const and
 *  the reduce-only group ops), matching the old name-keyed table. */
constexpr int kOpArity[kOpCodeCount] = {
    0, 1,                      // const, identity
    2, 2, 2, 2, 2, 2,          // add..pow
    2, 2, 2, 2, 2, 2, 2, 2, 1, // lt..or, not
    1, 1, 1, 1, 1, 1, 1, 1, 1, // neg..abs
    1, 1, 1, 1, 1, 1, 1, 1,    // sigmoid..gauss
    1, 1, 1,                   // re, im, conj
    2, 2, 3,                   // min, max, select
    0, 0,                      // sum, prod
};

/** Process-wide symbol interner. Append-only: a deque keeps the string
 *  storage stable, so Op::str() references never dangle. Guarded by a
 *  shared_mutex — compiles run concurrently under the suite driver, and
 *  lookups vastly outnumber insertions. */
class Interner
{
  public:
    static Interner &instance()
    {
        static Interner interner;
        return interner;
    }

    uint32_t intern(std::string_view name)
    {
        {
            std::shared_lock lock(mutex_);
            auto it = ids_.find(name);
            if (it != ids_.end())
                return it->second;
        }
        std::unique_lock lock(mutex_);
        auto it = ids_.find(name);
        if (it != ids_.end())
            return it->second;
        const auto id = static_cast<uint32_t>(names_.size());
        names_.emplace_back(name);
        ids_.emplace(names_.back(), id);
        return id;
    }

    const std::string &name(uint32_t id) const
    {
        std::shared_lock lock(mutex_);
        if (id >= names_.size())
            panic("interned op symbol id out of range");
        return names_[id];
    }

  private:
    mutable std::shared_mutex mutex_;
    std::deque<std::string> names_;
    /** Keys view into names_ (stable storage). */
    std::unordered_map<std::string_view, uint32_t> ids_;
};

/** Builtin spelling -> OpCode lookup, built once. */
const std::unordered_map<std::string_view, OpCode> &
builtinCodes()
{
    static const auto *table = [] {
        auto *t = new std::unordered_map<std::string_view, OpCode>();
        for (int i = 0; i < kOpCodeCount; ++i)
            t->emplace(kOpNames[i], static_cast<OpCode>(i));
        return t;
    }();
    return *table;
}

} // namespace

Op
Op::intern(std::string_view name)
{
    const auto &codes = builtinCodes();
    auto it = codes.find(name);
    if (it != codes.end())
        return Op(it->second);
    Op op;
    op.code_ = OpCode::Symbol;
    op.sym_ = Interner::instance().intern(name);
    return op;
}

const std::string &
Op::str() const
{
    if (code_ == OpCode::Symbol)
        return Interner::instance().name(sym_);
    return kOpNames[static_cast<int>(code_)];
}

const std::string &
toString(Op op)
{
    return op.str();
}

int
mapOpArity(Op op)
{
    if (op.isSymbol())
        return 0;
    return kOpArity[static_cast<int>(op.code())];
}

size_t
OpSet::size() const
{
    return static_cast<size_t>(__builtin_popcountll(bits_)) + syms_.size();
}

std::vector<std::string>
OpSet::sortedNames() const
{
    std::set<std::string> names;
    for (int i = 0; i < kOpCodeCount; ++i) {
        if ((bits_ >> i) & 1)
            names.insert(kOpNames[i]);
    }
    for (uint32_t id : syms_)
        names.insert(Interner::instance().name(id));
    return {names.begin(), names.end()};
}

std::ostream &
operator<<(std::ostream &os, Op op)
{
    return os << op.str();
}

} // namespace polymath::ir
