#include "srdfg/serialize.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <variant>
#include <vector>

#include "core/json.h"
#include "core/strings.h"

namespace polymath::ir {

namespace {

// The JSON value/parser and locale-independent number emission live
// in core/json (shared with the bench artifact pipeline); local
// aliases keep the serializer body unchanged.
using JsonValue = json::Value;
using JsonArray = json::Array;
using JsonObject = json::Object;
using json::numberFromJson;
using json::numberToJson;
using json::quote;

// --------------------------------------------------------------------------
// Emission.
// --------------------------------------------------------------------------

const char *
exprKindName(IndexExpr::Kind kind)
{
    switch (kind) {
      case IndexExpr::Kind::Const: return "const";
      case IndexExpr::Kind::Var: return "var";
      case IndexExpr::Kind::Add: return "add";
      case IndexExpr::Kind::Sub: return "sub";
      case IndexExpr::Kind::Mul: return "mul";
      case IndexExpr::Kind::Div: return "div";
      case IndexExpr::Kind::Mod: return "mod";
      case IndexExpr::Kind::Neg: return "neg";
      case IndexExpr::Kind::Lt: return "lt";
      case IndexExpr::Kind::Le: return "le";
      case IndexExpr::Kind::Gt: return "gt";
      case IndexExpr::Kind::Ge: return "ge";
      case IndexExpr::Kind::Eq: return "eq";
      case IndexExpr::Kind::Ne: return "ne";
      case IndexExpr::Kind::And: return "and";
      case IndexExpr::Kind::Or: return "or";
      case IndexExpr::Kind::Not: return "not";
      case IndexExpr::Kind::Select: return "select";
    }
    panic("unhandled IndexExpr kind");
}

IndexExpr::Kind
exprKindFromName(const std::string &name)
{
    static const std::map<std::string, IndexExpr::Kind> table = {
        {"const", IndexExpr::Kind::Const}, {"var", IndexExpr::Kind::Var},
        {"add", IndexExpr::Kind::Add},     {"sub", IndexExpr::Kind::Sub},
        {"mul", IndexExpr::Kind::Mul},     {"div", IndexExpr::Kind::Div},
        {"mod", IndexExpr::Kind::Mod},     {"neg", IndexExpr::Kind::Neg},
        {"lt", IndexExpr::Kind::Lt},       {"le", IndexExpr::Kind::Le},
        {"gt", IndexExpr::Kind::Gt},       {"ge", IndexExpr::Kind::Ge},
        {"eq", IndexExpr::Kind::Eq},       {"ne", IndexExpr::Kind::Ne},
        {"and", IndexExpr::Kind::And},     {"or", IndexExpr::Kind::Or},
        {"not", IndexExpr::Kind::Not},
        {"select", IndexExpr::Kind::Select},
    };
    auto it = table.find(name);
    if (it == table.end())
        fatal("json: unknown index-expr kind '" + name + "'");
    return it->second;
}

void
emitIndexExpr(const IndexExpr &e, std::string *out)
{
    *out += "{\"k\":";
    *out += quote(exprKindName(e.kind()));
    if (e.kind() == IndexExpr::Kind::Const) {
        *out += format(",\"v\":%lld",
                       static_cast<long long>(e.constValue()));
    } else if (e.kind() == IndexExpr::Kind::Var) {
        *out += format(",\"s\":%d", e.varSlot());
    } else {
        *out += ",\"c\":[";
        for (size_t i = 0; i < e.children().size(); ++i) {
            if (i)
                *out += ",";
            emitIndexExpr(e.children()[i], out);
        }
        *out += "]";
    }
    *out += "}";
}

IndexExpr
readIndexExpr(const JsonValue &v)
{
    const auto kind = exprKindFromName(v.at("k").str());
    switch (kind) {
      case IndexExpr::Kind::Const:
        return IndexExpr::constant(v.at("v").asInt());
      case IndexExpr::Kind::Var:
        return IndexExpr::var(static_cast<int>(v.at("s").asInt()));
      case IndexExpr::Kind::Neg:
      case IndexExpr::Kind::Not:
        return IndexExpr::unary(kind, readIndexExpr(v.at("c").arr().at(0)));
      case IndexExpr::Kind::Select:
        return IndexExpr::select(readIndexExpr(v.at("c").arr().at(0)),
                                 readIndexExpr(v.at("c").arr().at(1)),
                                 readIndexExpr(v.at("c").arr().at(2)));
      default:
        return IndexExpr::binary(kind,
                                 readIndexExpr(v.at("c").arr().at(0)),
                                 readIndexExpr(v.at("c").arr().at(1)));
    }
}

void
emitAccess(const Graph &graph, const Access &a, std::string *out)
{
    *out += format("{\"v\":%d,\"coords\":[", a.value);
    const auto cs = graph.coords(a);
    for (size_t i = 0; i < cs.size(); ++i) {
        if (i)
            *out += ",";
        emitIndexExpr(cs[i], out);
    }
    *out += "]}";
}

/** Reads an access, interning its coords into @p graph. */
Access
readAccess(Graph &graph, const JsonValue &v)
{
    std::vector<IndexExpr> coords;
    for (const auto &c : v.at("coords").arr())
        coords.push_back(readIndexExpr(c));
    return graph.makeAccess(static_cast<ValueId>(v.at("v").asInt()),
                            coords);
}

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Constant: return "constant";
      case NodeKind::Map: return "map";
      case NodeKind::Reduce: return "reduce";
      case NodeKind::Component: return "component";
    }
    panic("unhandled NodeKind");
}

NodeKind
nodeKindFromName(const std::string &name)
{
    if (name == "constant") return NodeKind::Constant;
    if (name == "map") return NodeKind::Map;
    if (name == "reduce") return NodeKind::Reduce;
    if (name == "component") return NodeKind::Component;
    fatal("json: unknown node kind '" + name + "'");
}

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::Input: return "input";
      case EdgeKind::Output: return "output";
      case EdgeKind::State: return "state";
      case EdgeKind::Param: return "param";
      case EdgeKind::Internal: return "internal";
    }
    panic("unhandled EdgeKind");
}

EdgeKind
edgeKindFromName(const std::string &name)
{
    if (name == "input") return EdgeKind::Input;
    if (name == "output") return EdgeKind::Output;
    if (name == "state") return EdgeKind::State;
    if (name == "param") return EdgeKind::Param;
    if (name == "internal") return EdgeKind::Internal;
    fatal("json: unknown edge kind '" + name + "'");
}

void
emitGraph(const Graph &graph, std::string *out)
{
    *out += "{\"name\":" + quote(graph.name);
    *out += ",\"domain\":" + quote(lang::toString(graph.domain));
    *out += ",\"values\":[";
    for (size_t i = 0; i < graph.values.size(); ++i) {
        const auto &v = graph.values[i];
        if (i)
            *out += ",";
        *out += "{\"dtype\":" + quote(toString(v.md.dtype));
        *out += ",\"kind\":" + quote(edgeKindName(v.md.kind));
        *out += ",\"name\":" + quote(v.md.name);
        *out += format(",\"producer\":%d", v.producer);
        *out += ",\"shape\":[";
        for (int d = 0; d < v.md.shape.rank(); ++d) {
            if (d)
                *out += ",";
            *out += format("%lld",
                           static_cast<long long>(v.md.shape.dim(d)));
        }
        *out += "]}";
    }
    *out += "],\"inputs\":[";
    for (size_t i = 0; i < graph.inputs.size(); ++i) {
        if (i)
            *out += ",";
        *out += format("%d", graph.inputs[i]);
    }
    *out += "],\"outputs\":[";
    for (size_t i = 0; i < graph.outputs.size(); ++i) {
        if (i)
            *out += ",";
        *out += format("%d", graph.outputs[i]);
    }
    *out += "],\"nodes\":[";
    const auto pool = graph.nodePool();
    for (size_t i = 0; i < pool.size(); ++i) {
        const Node &node = pool[i];
        if (i)
            *out += ",";
        if (!node.live()) {
            *out += "null";
            continue;
        }
        *out += "{\"kind\":" + quote(nodeKindName(node.kind));
        *out += ",\"op\":" + quote(node.op.str());
        *out += ",\"domain\":" + quote(lang::toString(node.domain));
        *out += ",\"vars\":[";
        const auto dvars = graph.domainVars(node);
        for (size_t d = 0; d < dvars.size(); ++d) {
            const auto &var = dvars[d];
            if (d)
                *out += ",";
            *out += "{\"name\":" + quote(var.name);
            *out += format(",\"extent\":%lld,\"reduced\":%s",
                           static_cast<long long>(var.extent),
                           var.reduced ? "true" : "false");
            *out += "}";
        }
        *out += "],\"ins\":[";
        const auto ins = graph.ins(node);
        for (size_t a = 0; a < ins.size(); ++a) {
            if (a)
                *out += ",";
            emitAccess(graph, ins[a], out);
        }
        *out += "],\"outs\":[";
        const auto outs = graph.outs(node);
        for (size_t a = 0; a < outs.size(); ++a) {
            if (a)
                *out += ",";
            emitAccess(graph, outs[a], out);
        }
        *out += format("],\"base\":%d", node.base);
        *out += ",\"cval\":" + numberToJson(node.cval);
        if (node.hasPredicate) {
            *out += ",\"pred\":";
            emitIndexExpr(node.predicate, out);
        }
        if (node.subgraph) {
            *out += ",\"subgraph\":";
            emitGraph(*node.subgraph, out);
        }
        *out += "}";
    }
    *out += "]}";
}

std::unique_ptr<Graph>
readGraph(const JsonValue &v, const std::shared_ptr<IrContext> &context)
{
    auto graph = std::make_unique<Graph>();
    graph->name = v.at("name").str();
    graph->context = context;
    const std::string domain = v.at("domain").str();
    for (lang::Domain d :
         {lang::Domain::None, lang::Domain::RBT, lang::Domain::GA,
          lang::Domain::DSP, lang::Domain::DA, lang::Domain::DL}) {
        if (lang::toString(d) == domain)
            graph->domain = d;
    }
    for (const auto &jv : v.at("values").arr()) {
        Value value;
        value.id = static_cast<ValueId>(graph->values.size());
        const auto dtype = dtypeFromString(jv.at("dtype").str());
        if (!dtype)
            fatal("json: bad dtype");
        value.md.dtype = *dtype;
        value.md.kind = edgeKindFromName(jv.at("kind").str());
        value.md.name = jv.at("name").str();
        value.producer = static_cast<NodeId>(jv.at("producer").asInt());
        std::vector<int64_t> dims;
        for (const auto &d : jv.at("shape").arr())
            dims.push_back(d.asInt());
        value.md.shape = Shape(dims);
        graph->values.push_back(std::move(value));
    }
    for (const auto &jv : v.at("inputs").arr())
        graph->inputs.push_back(static_cast<ValueId>(jv.asInt()));
    for (const auto &jv : v.at("outputs").arr())
        graph->outputs.push_back(static_cast<ValueId>(jv.asInt()));
    for (const auto &jn : v.at("nodes").arr()) {
        if (jn.isNull()) {
            // Tombstoned slot: reserve the id so numbering round-trips.
            graph->eraseNode(
                graph->addNode(NodeKind::Map, OpCode::Identity));
            continue;
        }
        const NodeId id =
            graph->addNode(nodeKindFromName(jn.at("kind").str()),
                           Op::intern(jn.at("op").str()));
        Node &node = *graph->node(id);
        node.domain = lang::Domain::None;
        const std::string node_domain = jn.at("domain").str();
        for (lang::Domain d :
             {lang::Domain::None, lang::Domain::RBT, lang::Domain::GA,
              lang::Domain::DSP, lang::Domain::DA, lang::Domain::DL}) {
            if (lang::toString(d) == node_domain)
                node.domain = d;
        }
        for (const auto &jvar : jn.at("vars").arr()) {
            IndexVar var;
            var.name = jvar.at("name").str();
            var.extent = jvar.at("extent").asInt();
            var.reduced =
                std::get<bool>(jvar.at("reduced").data);
            graph->addDomainVar(node, std::move(var));
        }
        for (const auto &ja : jn.at("ins").arr())
            graph->addInput(node, readAccess(*graph, ja));
        for (const auto &ja : jn.at("outs").arr())
            graph->addOutput(node, readAccess(*graph, ja));
        node.base = static_cast<ValueId>(jn.at("base").asInt());
        node.cval = numberFromJson(jn.at("cval"));
        if (jn.obj().count("pred")) {
            node.predicate = readIndexExpr(jn.at("pred"));
            node.hasPredicate = true;
        }
        if (jn.obj().count("subgraph"))
            node.subgraph = readGraph(jn.at("subgraph"), context);
    }
    return graph;
}

} // namespace

std::string
toJson(const Graph &graph)
{
    std::string out;
    emitGraph(graph, &out);
    return out;
}

std::unique_ptr<Graph>
fromJson(const std::string &json, std::shared_ptr<IrContext> context)
{
    if (!context)
        context = std::make_shared<IrContext>();
    auto graph = readGraph(json::parse(json), context);
    graph->validate();
    return graph;
}

} // namespace polymath::ir
