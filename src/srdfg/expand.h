/**
 * @file
 * On-demand materialization of the scalar granularity of srDFG nodes.
 *
 * Group and element-wise nodes conceptually contain a scalar-level srDFG
 * (Fig. 5 ④/⑤ in the paper: an element-wise multiplication expands into one
 * multiply node per element; a sum expands into a chain of scalar adds).
 * Materializing that level for multi-GMAC workloads is infeasible, so the
 * stack keeps it implicit — Node::scalarOpCount() is exact and analytic —
 * and this API produces the explicit scalar subgraph only when asked,
 * under a hard node budget.
 */
#ifndef POLYMATH_SRDFG_EXPAND_H_
#define POLYMATH_SRDFG_EXPAND_H_

#include <memory>

#include "srdfg/graph.h"

namespace polymath::ir {

/**
 * Builds the scalar-level srDFG equivalent to @p node (a Map or Reduce of
 * @p parent). The result's inputs mirror the node's distinct input values
 * (plus base, when present) and its single output mirrors the node's
 * output value.
 *
 * @throws UserError when the expansion would exceed @p max_nodes or the
 * node folds a user-defined reduction (whose combiner is not a single
 * scalar op).
 */
std::unique_ptr<Graph> materializeScalar(const Graph &parent,
                                         const Node &node,
                                         int64_t max_nodes = 1 << 20);

/** Scalar op of a built-in reduction's combiner (sum -> add). */
Op combinerOp(Op reduction);

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_EXPAND_H_
