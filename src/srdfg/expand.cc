#include "srdfg/expand.h"

#include <map>

#include "pmlang/builtins.h"

namespace polymath::ir {

namespace {

/** Advances a mixed-radix counter; returns false after the last point. */
bool
nextPoint(std::vector<int64_t> *idx, const std::vector<int64_t> &extents)
{
    for (size_t i = idx->size(); i-- > 0;) {
        if (++(*idx)[i] < extents[i])
            return true;
        (*idx)[i] = 0;
    }
    return false;
}

/** Evaluates @p a's coords (owned by @p src) at @p point into constant
 *  coords. */
std::vector<IndexExpr>
constCoords(const Graph &src, const Access &a, std::span<const int64_t> point)
{
    const auto cs = src.coords(a);
    std::vector<IndexExpr> out;
    out.reserve(cs.size());
    for (const auto &c : cs)
        out.push_back(IndexExpr::constant(c.eval(point)));
    return out;
}

} // namespace

Op
combinerOp(Op reduction)
{
    switch (reduction.code()) {
      case OpCode::Sum: return OpCode::Add;
      case OpCode::Prod: return OpCode::Mul;
      case OpCode::Max: return OpCode::Max;
      case OpCode::Min: return OpCode::Min;
      default:
        fatal("reduction '" + reduction.str() +
              "' has no single-op combiner; cannot materialize");
    }
}

std::unique_ptr<Graph>
materializeScalar(const Graph &parent, const Node &node, int64_t max_nodes)
{
    if (node.kind != NodeKind::Map && node.kind != NodeKind::Reduce)
        fatal("only Map/Reduce nodes have a scalar expansion");
    if (node.domainSize(parent) > max_nodes) {
        fatal("scalar expansion of '" + node.op.str() + "' needs " +
              std::to_string(node.domainSize(parent)) + " nodes, budget is " +
              std::to_string(max_nodes));
    }
    const Op combiner =
        node.kind == NodeKind::Reduce ? combinerOp(node.op) : node.op;

    auto g = std::make_unique<Graph>();
    g->name = node.op.str() + "_scalar";
    g->domain = node.domain;
    g->context = parent.context;

    // Mirror the node's distinct input values (and base) as graph inputs.
    std::map<ValueId, ValueId> vmap;
    auto import_value = [&](ValueId v) {
        if (v < 0 || vmap.count(v))
            return;
        EdgeMeta md = parent.value(v).md;
        if (md.kind == EdgeKind::Internal)
            md.kind = EdgeKind::Input;
        const ValueId nv = g->addValue(md);
        g->inputs.push_back(nv);
        vmap[v] = nv;
    };
    for (const auto &in : parent.ins(node)) {
        if (!in.isIndexOperand())
            import_value(in.value);
    }
    import_value(node.base);

    const Access node_out = parent.outs(node)[0];
    const EdgeMeta &out_md = parent.value(node_out.value).md;
    EdgeMeta scalar_md;
    scalar_md.dtype = out_md.dtype;
    scalar_md.kind = EdgeKind::Internal;

    // Current version of the output tensor (base-chained partial writes).
    ValueId out_version = node.base >= 0 ? vmap.at(node.base) : -1;
    auto scatter_write = [&](ValueId scalar, std::span<const int64_t> point) {
        const Access scatter =
            g->makeAccess(-1, constCoords(parent, node_out, point));
        Node &store = *g->node(g->addNode(NodeKind::Map, OpCode::Identity));
        store.domain = node.domain;
        g->addInput(store, Access{scalar, {}});
        store.base = out_version;
        EdgeMeta md = out_md;
        md.kind = EdgeKind::Internal;
        const ValueId nv = g->addValue(md, store.id);
        g->addOutput(store, Access{nv, scatter.coords});
        out_version = nv;
    };

    const auto dvars = parent.domainVars(node);
    std::vector<int64_t> extents;
    for (const auto &v : dvars)
        extents.push_back(v.extent);

    if (node.kind == NodeKind::Map) {
        std::vector<int64_t> point(extents.size(), 0);
        if (node.domainSize(parent) > 0) {
            do {
                // Build the point's input accesses before creating the op
                // node (addNode may relocate the node pool).
                std::vector<Access> op_ins;
                for (const auto &in : parent.ins(node)) {
                    if (in.isIndexOperand()) {
                        const int64_t cval =
                            parent.coords(in)[0].eval(point);
                        Node &c = *g->node(
                            g->addNode(NodeKind::Constant, OpCode::Const));
                        c.cval = static_cast<double>(cval);
                        const ValueId cv = g->addValue(scalar_md, c.id);
                        g->addOutput(c, Access{cv, {}});
                        op_ins.push_back(Access{cv, {}});
                    } else {
                        op_ins.push_back(
                            g->makeAccess(vmap.at(in.value),
                                          constCoords(parent, in, point)));
                    }
                }
                Node &op = *g->node(g->addNode(NodeKind::Map, node.op));
                op.domain = node.domain;
                for (const Access &a : op_ins)
                    g->addInput(op, a);
                const ValueId sv = g->addValue(scalar_md, op.id);
                g->addOutput(op, Access{sv, {}});
                scatter_write(sv, point);
            } while (nextPoint(&point, extents));
        }
    } else {
        // Reduce: fold a combiner chain per output point.
        std::vector<size_t> free_axes;
        std::vector<size_t> red_axes;
        for (size_t i = 0; i < dvars.size(); ++i) {
            (dvars[i].reduced ? red_axes : free_axes).push_back(i);
        }
        std::vector<int64_t> free_ext;
        std::vector<int64_t> red_ext;
        for (size_t i : free_axes)
            free_ext.push_back(extents[i]);
        for (size_t i : red_axes)
            red_ext.push_back(extents[i]);

        const Access node_in = parent.ins(node)[0];
        std::vector<int64_t> fpoint(free_ext.size(), 0);
        std::vector<int64_t> full(extents.size(), 0);
        do {
            for (size_t i = 0; i < free_axes.size(); ++i)
                full[free_axes[i]] = fpoint[i];
            ValueId acc = -1;
            std::vector<int64_t> rpoint(red_ext.size(), 0);
            do {
                for (size_t i = 0; i < red_axes.size(); ++i)
                    full[red_axes[i]] = rpoint[i];
                if (node.hasPredicate && node.predicate.eval(full) == 0)
                    continue;
                const Access mapped =
                    g->makeAccess(vmap.at(node_in.value),
                                  constCoords(parent, node_in, full));
                if (acc < 0) {
                    Node &first = *g->node(
                        g->addNode(NodeKind::Map, OpCode::Identity));
                    first.domain = node.domain;
                    g->addInput(first, mapped);
                    acc = g->addValue(scalar_md, first.id);
                    g->addOutput(first, Access{acc, {}});
                } else {
                    Node &fold =
                        *g->node(g->addNode(NodeKind::Map, combiner));
                    fold.domain = node.domain;
                    g->addInput(fold, Access{acc, {}});
                    g->addInput(fold, mapped);
                    const ValueId nv = g->addValue(scalar_md, fold.id);
                    g->addOutput(fold, Access{nv, {}});
                    acc = nv;
                }
            } while (!red_ext.empty() && nextPoint(&rpoint, red_ext));
            if (acc < 0) {
                // Guard excluded every element: identity of the reduction.
                Node &c = *g->node(
                    g->addNode(NodeKind::Constant, OpCode::Const));
                c.cval = lang::reductionIdentity(node.op.str());
                acc = g->addValue(scalar_md, c.id);
                g->addOutput(c, Access{acc, {}});
            }
            // Scatter through the node's output map evaluated on the free
            // point (coords reference free slots of the full domain).
            scatter_write(acc, full);
        } while (!free_ext.empty() && nextPoint(&fpoint, free_ext));

        if (free_ext.empty() && g->nodeCount() == 0) {
            // Degenerate: zero-point domain cannot occur (extents >= 1).
            panic("empty reduce domain");
        }
    }

    if (out_version < 0) {
        // Zero-point map domain cannot occur; keep validate() happy.
        panic("materialization produced no output");
    }
    {
        // Final version becomes the graph output, renamed to the node's
        // output value name.
        Value &v = g->value(out_version);
        v.md.name = out_md.name;
        v.md.kind =
            out_md.kind == EdgeKind::Internal ? EdgeKind::Output : out_md.kind;
        g->touchNames(); // the rename above invalidates the name index
        g->outputs.push_back(out_version);
    }
    g->validate();
    return g;
}

} // namespace polymath::ir
