#include "srdfg/expand.h"

#include <map>

#include "pmlang/builtins.h"

namespace polymath::ir {

namespace {

/** Advances a mixed-radix counter; returns false after the last point. */
bool
nextPoint(std::vector<int64_t> *idx, const std::vector<int64_t> &extents)
{
    for (size_t i = idx->size(); i-- > 0;) {
        if (++(*idx)[i] < extents[i])
            return true;
        (*idx)[i] = 0;
    }
    return false;
}

/** Evaluates access coords at @p point into constant coords. */
std::vector<IndexExpr>
constCoords(const Access &a, std::span<const int64_t> point)
{
    std::vector<IndexExpr> out;
    out.reserve(a.coords.size());
    for (const auto &c : a.coords)
        out.push_back(IndexExpr::constant(c.eval(point)));
    return out;
}

} // namespace

Op
combinerOp(Op reduction)
{
    switch (reduction.code()) {
      case OpCode::Sum: return OpCode::Add;
      case OpCode::Prod: return OpCode::Mul;
      case OpCode::Max: return OpCode::Max;
      case OpCode::Min: return OpCode::Min;
      default:
        fatal("reduction '" + reduction.str() +
              "' has no single-op combiner; cannot materialize");
    }
}

std::unique_ptr<Graph>
materializeScalar(const Graph &parent, const Node &node, int64_t max_nodes)
{
    if (node.kind != NodeKind::Map && node.kind != NodeKind::Reduce)
        fatal("only Map/Reduce nodes have a scalar expansion");
    if (node.domainSize() > max_nodes) {
        fatal("scalar expansion of '" + node.op.str() + "' needs " +
              std::to_string(node.domainSize()) + " nodes, budget is " +
              std::to_string(max_nodes));
    }
    const Op combiner =
        node.kind == NodeKind::Reduce ? combinerOp(node.op) : node.op;

    auto g = std::make_unique<Graph>();
    g->name = node.op.str() + "_scalar";
    g->domain = node.domain;
    g->context = parent.context;

    // Mirror the node's distinct input values (and base) as graph inputs.
    std::map<ValueId, ValueId> vmap;
    auto import_value = [&](ValueId v) {
        if (v < 0 || vmap.count(v))
            return;
        EdgeMeta md = parent.value(v).md;
        if (md.kind == EdgeKind::Internal)
            md.kind = EdgeKind::Input;
        const ValueId nv = g->addValue(md);
        g->inputs.push_back(nv);
        vmap[v] = nv;
    };
    for (const auto &in : node.ins) {
        if (!in.isIndexOperand())
            import_value(in.value);
    }
    import_value(node.base);

    const EdgeMeta &out_md = parent.value(node.outs[0].value).md;
    EdgeMeta scalar_md;
    scalar_md.dtype = out_md.dtype;
    scalar_md.kind = EdgeKind::Internal;

    // Current version of the output tensor (base-chained partial writes).
    ValueId out_version = node.base >= 0 ? vmap.at(node.base) : -1;
    auto scatter_write = [&](ValueId scalar, std::span<const int64_t> point) {
        Node &store = g->addNode(NodeKind::Map, OpCode::Identity);
        store.domain = node.domain;
        store.ins.push_back(Access{scalar, {}});
        store.base = out_version;
        EdgeMeta md = out_md;
        md.kind = EdgeKind::Internal;
        const ValueId nv = g->addValue(md, store.id);
        store.outs.push_back(Access{nv, constCoords(node.outs[0], point)});
        out_version = nv;
    };

    std::vector<int64_t> extents;
    for (const auto &v : node.domainVars)
        extents.push_back(v.extent);

    if (node.kind == NodeKind::Map) {
        std::vector<int64_t> point(extents.size(), 0);
        if (node.domainSize() > 0) {
            do {
                Node &op = g->addNode(NodeKind::Map, node.op);
                op.domain = node.domain;
                for (const auto &in : node.ins) {
                    if (in.isIndexOperand()) {
                        Node &c = g->addNode(NodeKind::Constant, OpCode::Const);
                        c.cval =
                            static_cast<double>(in.coords[0].eval(point));
                        const ValueId cv = g->addValue(scalar_md, c.id);
                        c.outs.push_back(Access{cv, {}});
                        op.ins.push_back(Access{cv, {}});
                    } else {
                        op.ins.push_back(
                            Access{vmap.at(in.value), constCoords(in, point)});
                    }
                }
                const ValueId sv = g->addValue(scalar_md, op.id);
                op.outs.push_back(Access{sv, {}});
                scatter_write(sv, point);
            } while (nextPoint(&point, extents));
        }
    } else {
        // Reduce: fold a combiner chain per output point.
        std::vector<size_t> free_axes;
        std::vector<size_t> red_axes;
        for (size_t i = 0; i < node.domainVars.size(); ++i) {
            (node.domainVars[i].reduced ? red_axes : free_axes).push_back(i);
        }
        std::vector<int64_t> free_ext;
        std::vector<int64_t> red_ext;
        for (size_t i : free_axes)
            free_ext.push_back(extents[i]);
        for (size_t i : red_axes)
            red_ext.push_back(extents[i]);

        std::vector<int64_t> fpoint(free_ext.size(), 0);
        std::vector<int64_t> full(extents.size(), 0);
        do {
            for (size_t i = 0; i < free_axes.size(); ++i)
                full[free_axes[i]] = fpoint[i];
            ValueId acc = -1;
            std::vector<int64_t> rpoint(red_ext.size(), 0);
            do {
                for (size_t i = 0; i < red_axes.size(); ++i)
                    full[red_axes[i]] = rpoint[i];
                if (node.hasPredicate && node.predicate.eval(full) == 0)
                    continue;
                const Access element{node.ins[0].value,
                                     constCoords(node.ins[0], full)};
                const Access mapped{vmap.at(node.ins[0].value),
                                    element.coords};
                if (acc < 0) {
                    Node &first = g->addNode(NodeKind::Map, OpCode::Identity);
                    first.domain = node.domain;
                    first.ins.push_back(mapped);
                    acc = g->addValue(scalar_md, first.id);
                    first.outs.push_back(Access{acc, {}});
                } else {
                    Node &fold = g->addNode(NodeKind::Map, combiner);
                    fold.domain = node.domain;
                    fold.ins.push_back(Access{acc, {}});
                    fold.ins.push_back(mapped);
                    const ValueId nv = g->addValue(scalar_md, fold.id);
                    fold.outs.push_back(Access{nv, {}});
                    acc = nv;
                }
            } while (!red_ext.empty() && nextPoint(&rpoint, red_ext));
            if (acc < 0) {
                // Guard excluded every element: identity of the reduction.
                Node &c = g->addNode(NodeKind::Constant, OpCode::Const);
                c.cval = lang::reductionIdentity(node.op.str());
                acc = g->addValue(scalar_md, c.id);
                c.outs.push_back(Access{acc, {}});
            }
            // Scatter through the node's output map evaluated on the free
            // point (coords reference free slots of the full domain).
            scatter_write(acc, full);
        } while (!free_ext.empty() && nextPoint(&fpoint, free_ext));

        if (free_ext.empty() && g->nodes.empty()) {
            // Degenerate: zero-point domain cannot occur (extents >= 1).
            panic("empty reduce domain");
        }
    }

    if (out_version < 0) {
        // Zero-point map domain cannot occur; keep validate() happy.
        panic("materialization produced no output");
    }
    {
        // Final version becomes the graph output, renamed to the node's
        // output value name.
        Value &v = g->value(out_version);
        v.md.name = out_md.name;
        v.md.kind =
            out_md.kind == EdgeKind::Internal ? EdgeKind::Output : out_md.kind;
        g->outputs.push_back(out_version);
    }
    g->validate();
    return g;
}

} // namespace polymath::ir
