/**
 * @file
 * JSON serialization of srDFGs.
 *
 * Round-trippable textual form of the whole recursive graph — values with
 * their edge metadata, nodes with iteration domains / access maps /
 * guards, component subgraphs nested — so graphs can be saved, diffed,
 * and consumed by external tooling (`pmc --json`). Custom-reduction
 * kernels live in the PMLang program, so a deserialized graph reuses the
 * IrContext supplied by the caller (or none, for programs without custom
 * reductions).
 */
#ifndef POLYMATH_SRDFG_SERIALIZE_H_
#define POLYMATH_SRDFG_SERIALIZE_H_

#include <memory>
#include <string>

#include "srdfg/graph.h"

namespace polymath::ir {

/** Serializes @p graph (recursively) to JSON text. */
std::string toJson(const Graph &graph);

/**
 * Parses a graph serialized by toJson(). @p context supplies custom
 * reductions (pass the original graph's context or a fresh one).
 * @throws UserError on malformed input.
 */
std::unique_ptr<Graph> fromJson(const std::string &json,
                                std::shared_ptr<IrContext> context);

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_SERIALIZE_H_
