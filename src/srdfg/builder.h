/**
 * @file
 * srDFG generation from a PMLang program (Section IV-A).
 *
 * The builder inlines every component instantiation — each call site gets
 * its own subgraph copy, preserving context-sensitive metadata — resolves
 * symbolic dimensions against actual argument shapes, binds literal param
 * actuals as compile-time constants (usable in index arithmetic), converts
 * each assignment into a chain of Map/Reduce nodes in SSA form, and records
 * type-modifier metadata on every boundary edge.
 */
#ifndef POLYMATH_SRDFG_BUILDER_H_
#define POLYMATH_SRDFG_BUILDER_H_

#include <map>
#include <memory>
#include <string>

#include "pmlang/ast.h"
#include "srdfg/graph.h"

namespace polymath::ir {

/** Options for srDFG construction. */
struct BuildOptions
{
    /** Top-level component to instantiate. */
    std::string entry = "main";

    /** Compile-time values for scalar params of the entry component that
     *  participate in index arithmetic. Params bound here do not become
     *  runtime graph inputs. */
    std::map<std::string, int64_t> paramConsts;
};

/**
 * Builds the srDFG of @p program's entry component. The program must have
 * passed lang::analyze().
 * @throws UserError when shapes/bounds cannot be resolved to constants.
 */
std::unique_ptr<Graph> buildSrdfg(
    std::shared_ptr<const lang::Program> program,
    const BuildOptions &options = {});

/** Convenience: parse + analyze + build in one call. */
std::unique_ptr<Graph> compileToSrdfg(const std::string &source,
                                      const BuildOptions &options = {});

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_BUILDER_H_
