/**
 * @file
 * Integer index arithmetic over a node's iteration domain.
 *
 * srDFG access maps (gathers on inputs, scatters on outputs) and reduction
 * guards are closed-form integer expressions over the iteration variables of
 * the owning node — this is what lets PMLang express strided indexing like
 * ctrl_prev[(i+1)*h] and Boolean conditionals like sum[i][j: j != i](...)
 * without loops (Section II-B).
 *
 * Variables are identified by their slot in the owning node's iteration
 * domain, so IndexExpr values can be evaluated against a flat index vector
 * with no name lookups.
 */
#ifndef POLYMATH_SRDFG_INDEX_EXPR_H_
#define POLYMATH_SRDFG_INDEX_EXPR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace polymath::ir {

/**
 * Closed-form integer expression over iteration-domain variables.
 *
 * Expressions are immutable once built (every transformation —
 * substituted, remapped — returns a new expression), so interior nodes
 * share their child list behind a refcount: copying an IndexExpr of any
 * depth is O(1), which keeps Graph::clone()'s coord-arena copy flat and
 * lets composition reuse subtrees instead of duplicating them.
 */
class IndexExpr
{
  public:
    enum class Kind : uint8_t {
        Const, Var,
        Add, Sub, Mul, Div, Mod, Neg,
        Lt, Le, Gt, Ge, Eq, Ne, And, Or, Not,
        Select, ///< children: cond, then, else
    };

    /** Default-constructed expression is the constant 0. */
    IndexExpr() = default;

    static IndexExpr constant(int64_t value);
    static IndexExpr var(int slot);
    static IndexExpr unary(Kind kind, IndexExpr operand);
    static IndexExpr binary(Kind kind, IndexExpr lhs, IndexExpr rhs);
    static IndexExpr select(IndexExpr cond, IndexExpr then_e,
                            IndexExpr else_e);

    Kind kind() const { return kind_; }
    int64_t constValue() const { return cval_; }
    int varSlot() const { return slot_; }
    const std::vector<IndexExpr> &children() const
    {
        static const std::vector<IndexExpr> kNone;
        return children_ ? *children_ : kNone;
    }

    /** Evaluates against @p env, where env[slot] is the value of the
     *  iteration variable in that slot. Comparisons yield 0/1. */
    int64_t eval(std::span<const int64_t> env) const;

    /** True when no Var node appears (expression is compile-time). */
    bool isConst() const { return vars_ == 0; }

    /** Largest var slot referenced plus one; 0 when isConst(). */
    int varCount() const { return vars_; }

    /** Remaps every Var slot through @p map (old slot -> new slot). */
    IndexExpr remapped(std::span<const int> map) const;

    /** Replaces Var(k) with @p exprs[k] (functional composition of access
     *  maps; used by gather-elision rewrites). */
    IndexExpr substituted(std::span<const IndexExpr> exprs) const;

    /** True for the exact pattern Var(slot). */
    bool isIdentityVar(int slot) const;

    /** Renders with variable names from @p names (by slot). */
    std::string str(std::span<const std::string> names) const;

    bool operator==(const IndexExpr &other) const;

  private:
    /** Wraps @p kids for sharing; nullptr when empty (leaves stay
     *  allocation-free). */
    static std::shared_ptr<const std::vector<IndexExpr>>
    share(std::vector<IndexExpr> kids);

    const IndexExpr &child(size_t i) const { return (*children_)[i]; }

    Kind kind_ = Kind::Const;
    int64_t cval_ = 0;
    int slot_ = 0;
    /** Largest var slot + 1 over the whole tree, maintained by the
     *  builders so varCount()/isConst() need no tree walk (validate()
     *  queries them per coord). Fits in the padding after slot_. */
    int vars_ = 0;
    std::shared_ptr<const std::vector<IndexExpr>> children_;
};

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_INDEX_EXPR_H_
