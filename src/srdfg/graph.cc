#include "srdfg/graph.h"

#include <algorithm>
#include <set>

#include "core/error.h"

namespace polymath::ir {

std::string
toString(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Input: return "input";
      case EdgeKind::Output: return "output";
      case EdgeKind::State: return "state";
      case EdgeKind::Param: return "param";
      case EdgeKind::Internal: return "internal";
    }
    panic("unhandled EdgeKind");
}

EdgeKind
edgeKindFor(lang::Modifier m)
{
    switch (m) {
      case lang::Modifier::Input: return EdgeKind::Input;
      case lang::Modifier::Output: return EdgeKind::Output;
      case lang::Modifier::State: return EdgeKind::State;
      case lang::Modifier::Param: return EdgeKind::Param;
    }
    panic("unhandled Modifier");
}

int64_t
Node::domainSize() const
{
    int64_t n = 1;
    for (const auto &v : domainVars)
        n *= v.extent;
    return n;
}

int64_t
Node::reduceSize() const
{
    int64_t n = 1;
    for (const auto &v : domainVars) {
        if (v.reduced)
            n *= v.extent;
    }
    return n;
}

int64_t
Node::scalarOpCount() const
{
    switch (kind) {
      case NodeKind::Constant:
        return 0;
      case NodeKind::Map:
        return isMoveOp(op) ? 0 : domainSize();
      case NodeKind::Reduce: {
        const int64_t outputs_n = domainSize() / std::max<int64_t>(
                                                     reduceSize(), 1);
        const int64_t combines =
            outputs_n * std::max<int64_t>(reduceSize() - 1, 0);
        const int64_t guards = hasPredicate ? domainSize() : 0;
        return combines + guards;
      }
      case NodeKind::Component:
        return subgraph ? subgraph->scalarOpCount() : 0;
    }
    panic("unhandled NodeKind");
}

std::vector<std::string>
Node::domainVarNames() const
{
    std::vector<std::string> names;
    names.reserve(domainVars.size());
    for (const auto &v : domainVars)
        names.push_back(v.name);
    return names;
}

ValueId
Graph::addValue(EdgeMeta md, NodeId producer)
{
    Value v;
    v.id = static_cast<ValueId>(values.size());
    v.md = std::move(md);
    v.producer = producer;
    values.push_back(std::move(v));
    if (usesValid_)
        uses_.emplace_back();
    return values.back().id;
}

Node &
Graph::addNode(NodeKind kind, Op op)
{
    auto n = std::make_unique<Node>();
    n->id = static_cast<NodeId>(nodes.size());
    n->kind = kind;
    n->op = op;
    n->domain = domain;
    nodes.push_back(std::move(n));
    return *nodes.back();
}

Value &
Graph::value(ValueId id)
{
    if (id < 0 || static_cast<size_t>(id) >= values.size())
        panic("value id out of range");
    return values[static_cast<size_t>(id)];
}

const Value &
Graph::value(ValueId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= values.size())
        panic("value id out of range");
    return values[static_cast<size_t>(id)];
}

Node *
Graph::node(NodeId id)
{
    if (id < 0 || static_cast<size_t>(id) >= nodes.size())
        panic("node id out of range");
    return nodes[static_cast<size_t>(id)].get();
}

const Node *
Graph::node(NodeId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= nodes.size())
        panic("node id out of range");
    return nodes[static_cast<size_t>(id)].get();
}

int64_t
Graph::liveNodeCount() const
{
    int64_t n = 0;
    for (const auto &node : nodes) {
        if (node)
            ++n;
    }
    return n;
}

int64_t
Graph::scalarOpCount() const
{
    int64_t n = 0;
    for (const auto &node : nodes) {
        if (node)
            n += node->scalarOpCount();
    }
    return n;
}

std::vector<std::vector<NodeId>>
Graph::consumers() const
{
    std::vector<std::vector<NodeId>> out(values.size());
    for (const auto &node : nodes) {
        if (!node)
            continue;
        auto touch = [&](ValueId v) {
            if (v >= 0)
                out[static_cast<size_t>(v)].push_back(node->id);
        };
        for (const auto &in : node->ins)
            touch(in.value);
        touch(node->base);
    }
    return out;
}

std::vector<Edge>
Graph::edges() const
{
    std::vector<Edge> out;
    const auto cons = consumers();
    for (const auto &v : values) {
        for (NodeId dst : cons[static_cast<size_t>(v.id)])
            out.push_back(Edge{v.producer, dst, v.id});
    }
    for (ValueId v : outputs)
        out.push_back(Edge{value(v).producer, -1, v});
    return out;
}

void
Graph::rebuildUses() const
{
    uses_.assign(values.size(), {});
    for (const auto &node : nodes) {
        if (!node)
            continue;
        for (const auto &in : node->ins) {
            if (in.value >= 0)
                uses_[static_cast<size_t>(in.value)].push_back(node->id);
        }
        if (node->base >= 0)
            uses_[static_cast<size_t>(node->base)].push_back(node->id);
    }
    usesValid_ = true;
}

const std::vector<NodeId> &
Graph::uses(ValueId v) const
{
    if (!usesValid_)
        rebuildUses();
    if (v < 0 || static_cast<size_t>(v) >= uses_.size())
        panic("uses(): value id out of range");
    return uses_[static_cast<size_t>(v)];
}

void
Graph::noteUse(ValueId v, NodeId n)
{
    if (usesValid_ && v >= 0)
        uses_[static_cast<size_t>(v)].push_back(n);
}

void
Graph::dropUse(ValueId v, NodeId n)
{
    if (!usesValid_ || v < 0)
        return;
    auto &list = uses_[static_cast<size_t>(v)];
    for (size_t i = 0; i < list.size(); ++i) {
        if (list[i] == n) {
            list[i] = list.back();
            list.pop_back();
            return;
        }
    }
    panic("use cache missing an entry being removed");
}

void
Graph::addInput(Node &node, Access access)
{
    noteUse(access.value, node.id);
    node.ins.push_back(std::move(access));
}

void
Graph::setInput(Node &node, size_t slot, Access access)
{
    if (slot >= node.ins.size())
        panic("setInput(): slot out of range");
    if (node.ins[slot].value != access.value) {
        dropUse(node.ins[slot].value, node.id);
        noteUse(access.value, node.id);
    }
    node.ins[slot] = std::move(access);
}

void
Graph::setInputs(Node &node, std::vector<Access> ins)
{
    for (const auto &in : node.ins)
        dropUse(in.value, node.id);
    node.ins = std::move(ins);
    for (const auto &in : node.ins)
        noteUse(in.value, node.id);
}

void
Graph::setBase(Node &node, ValueId base)
{
    if (node.base != base) {
        dropUse(node.base, node.id);
        noteUse(base, node.id);
    }
    node.base = base;
}

void
Graph::eraseNode(NodeId id)
{
    if (id < 0 || static_cast<size_t>(id) >= nodes.size())
        panic("eraseNode(): id out of range");
    if (const Node *node = nodes[static_cast<size_t>(id)].get();
        node && usesValid_) {
        for (const auto &in : node->ins)
            dropUse(in.value, id);
        dropUse(node->base, id);
    }
    nodes[static_cast<size_t>(id)].reset();
}

std::unique_ptr<Graph>
Graph::clone() const
{
    auto out = std::make_unique<Graph>();
    out->name = name;
    out->domain = domain;
    out->values = values;
    out->inputs = inputs;
    out->outputs = outputs;
    out->context = context;
    out->nodes.reserve(nodes.size());
    for (const auto &node : nodes) {
        if (!node) {
            out->nodes.push_back(nullptr);
            continue;
        }
        auto copy = std::make_unique<Node>();
        copy->id = node->id;
        copy->kind = node->kind;
        copy->op = node->op;
        copy->domain = node->domain;
        copy->domainVars = node->domainVars;
        copy->predicate = node->predicate;
        copy->hasPredicate = node->hasPredicate;
        copy->ins = node->ins;
        copy->outs = node->outs;
        copy->base = node->base;
        copy->cval = node->cval;
        if (node->subgraph)
            copy->subgraph = node->subgraph->clone();
        out->nodes.push_back(std::move(copy));
    }
    return out;
}

ValueId
Graph::findValueByName(const std::string &name) const
{
    for (const auto &v : values) {
        if (v.md.name == name)
            return v.id;
    }
    return -1;
}

void
Graph::validate() const
{
    std::set<ValueId> produced;
    for (const auto &node : nodes) {
        if (!node)
            continue;
        const int nvars = static_cast<int>(node->domainVars.size());
        auto check_access = [&](const Access &a, bool is_output) {
            if (a.isIndexOperand()) {
                if (a.coords.size() != 1)
                    panic("index operand must carry exactly one coord");
            } else if (a.value < 0 ||
                       static_cast<size_t>(a.value) >= values.size()) {
                panic("access references bad value id");
            } else if (!a.coords.empty()) {
                const auto &v = value(a.value);
                if (static_cast<int>(a.coords.size()) !=
                    std::max(v.md.shape.rank(), 0)) {
                    panic("access coord count does not match value rank in "
                          "graph " + this->name);
                }
            }
            for (const auto &c : a.coords) {
                if (c.varCount() > nvars)
                    panic("access coord references var beyond domain");
            }
            if (is_output && !a.isIndexOperand()) {
                const auto &v = value(a.value);
                if (v.producer != node->id)
                    panic("output value's producer link is stale");
            }
        };
        for (const auto &in : node->ins)
            check_access(in, false);
        for (const auto &out : node->outs) {
            check_access(out, true);
            produced.insert(out.value);
        }
        if (node->hasPredicate && node->predicate.varCount() > nvars)
            panic("predicate references var beyond domain");
        switch (node->kind) {
          case NodeKind::Constant:
            if (node->outs.size() != 1)
                panic("constant must have one output");
            break;
          case NodeKind::Map:
            if (node->outs.size() != 1)
                panic("map must have one output");
            if (mapOpArity(node->op) !=
                static_cast<int>(node->ins.size())) {
                panic("map op '" + node->op.str() + "' arity mismatch");
            }
            break;
          case NodeKind::Reduce:
            if (node->outs.size() != 1 || node->ins.size() != 1)
                panic("reduce must have one input and one output");
            break;
          case NodeKind::Component:
            if (!node->subgraph)
                panic("component node lacks a subgraph");
            node->subgraph->validate();
            if (node->subgraph->inputs.size() != node->ins.size())
                panic("component input binding count mismatch");
            if (node->subgraph->outputs.size() != node->outs.size())
                panic("component output binding count mismatch");
            break;
        }
    }
    for (ValueId v : inputs) {
        if (value(v).producer != -1)
            panic("graph input has a producer");
    }
    for (const auto &v : values) {
        if (v.producer >= 0) {
            const Node *p = node(v.producer);
            if (!p)
                continue; // producer erased; passes must clean up uses
            bool found = false;
            for (const auto &out : p->outs)
                found = found || out.value == v.id;
            if (!found)
                panic("value's producer does not list it as an output");
        }
    }
    if (usesValid_) {
        // The incremental use cache must agree with a from-scratch
        // recomputation, as multisets per value (a node appears once per
        // referencing access, in no particular order).
        std::vector<std::vector<NodeId>> fresh(values.size());
        for (const auto &node : nodes) {
            if (!node)
                continue;
            for (const auto &in : node->ins) {
                if (in.value >= 0)
                    fresh[static_cast<size_t>(in.value)].push_back(
                        node->id);
            }
            if (node->base >= 0)
                fresh[static_cast<size_t>(node->base)].push_back(node->id);
        }
        if (uses_.size() != fresh.size())
            panic("use cache is stale: value count mismatch in graph " +
                  this->name);
        for (size_t v = 0; v < fresh.size(); ++v) {
            auto cached = uses_[v];
            auto &expect = fresh[v];
            std::sort(cached.begin(), cached.end());
            std::sort(expect.begin(), expect.end());
            if (cached != expect)
                panic("use cache is stale for value %" +
                      std::to_string(v) + " in graph " + this->name);
        }
    }
}

} // namespace polymath::ir
