#include "srdfg/graph.h"

#include <algorithm>

#include "core/error.h"

namespace polymath::ir {

std::string
toString(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Input: return "input";
      case EdgeKind::Output: return "output";
      case EdgeKind::State: return "state";
      case EdgeKind::Param: return "param";
      case EdgeKind::Internal: return "internal";
    }
    panic("unhandled EdgeKind");
}

EdgeKind
edgeKindFor(lang::Modifier m)
{
    switch (m) {
      case lang::Modifier::Input: return EdgeKind::Input;
      case lang::Modifier::Output: return EdgeKind::Output;
      case lang::Modifier::State: return EdgeKind::State;
      case lang::Modifier::Param: return EdgeKind::Param;
    }
    panic("unhandled Modifier");
}

int64_t
Node::domainSize(const Graph &g) const
{
    int64_t n = 1;
    for (const auto &v : g.domainVars(*this))
        n *= v.extent;
    return n;
}

int64_t
Node::reduceSize(const Graph &g) const
{
    int64_t n = 1;
    for (const auto &v : g.domainVars(*this)) {
        if (v.reduced)
            n *= v.extent;
    }
    return n;
}

int64_t
Node::scalarOpCount(const Graph &g) const
{
    switch (kind) {
      case NodeKind::Constant:
        return 0;
      case NodeKind::Map:
        return isMoveOp(op) ? 0 : domainSize(g);
      case NodeKind::Reduce: {
        const int64_t outputs_n =
            domainSize(g) / std::max<int64_t>(reduceSize(g), 1);
        const int64_t combines =
            outputs_n * std::max<int64_t>(reduceSize(g) - 1, 0);
        const int64_t guards = hasPredicate ? domainSize(g) : 0;
        return combines + guards;
      }
      case NodeKind::Component:
        return subgraph ? subgraph->scalarOpCount() : 0;
    }
    panic("unhandled NodeKind");
}

std::vector<std::string>
Node::domainVarNames(const Graph &g) const
{
    const auto vars = g.domainVars(*this);
    std::vector<std::string> names;
    names.reserve(vars.size());
    for (const auto &v : vars)
        names.push_back(v.name);
    return names;
}

ValueId
Graph::addValue(EdgeMeta md, NodeId producer)
{
    Value v;
    v.id = static_cast<ValueId>(values.size());
    v.md = std::move(md);
    v.producer = producer;
    values.push_back(std::move(v));
    if (usesValid_)
        useCells_.emplace_back();
    if (namesValid_)
        nameIndex_.emplace(values.back().md.name, values.back().id);
    return values.back().id;
}

NodeId
Graph::addNode(NodeKind kind, Op op)
{
    Node &n = nodes_.emplace_back();
    n.id = static_cast<NodeId>(nodes_.size() - 1);
    n.kind = kind;
    n.op = op;
    n.domain = domain;
    return n.id;
}

Value &
Graph::value(ValueId id)
{
    if (id < 0 || static_cast<size_t>(id) >= values.size())
        panic("value id out of range");
    return values[static_cast<size_t>(id)];
}

const Value &
Graph::value(ValueId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= values.size())
        panic("value id out of range");
    return values[static_cast<size_t>(id)];
}

Node *
Graph::node(NodeId id)
{
    if (id < 0 || static_cast<size_t>(id) >= nodes_.size())
        panic("node id out of range");
    Node &n = nodes_[static_cast<size_t>(id)];
    return n.live_ ? &n : nullptr;
}

const Node *
Graph::node(NodeId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= nodes_.size())
        panic("node id out of range");
    const Node &n = nodes_[static_cast<size_t>(id)];
    return n.live_ ? &n : nullptr;
}

int64_t
Graph::liveNodeCount() const
{
    int64_t n = 0;
    for (const auto &node : nodes_) {
        if (node.live_)
            ++n;
    }
    return n;
}

int64_t
Graph::scalarOpCount() const
{
    int64_t n = 0;
    for (const auto &node : nodes_) {
        if (node.live_)
            n += node.scalarOpCount(*this);
    }
    return n;
}

std::span<const Access>
Graph::ins(const Node &node) const
{
    return {accessPool_.data() + node.ins_.off, node.ins_.len};
}

std::span<const Access>
Graph::outs(const Node &node) const
{
    return {accessPool_.data() + node.outs_.off, node.outs_.len};
}

std::span<Access>
Graph::outsMut(Node &node)
{
    return {accessPool_.data() + node.outs_.off, node.outs_.len};
}

std::span<Access>
Graph::insMut(Node &node)
{
    return {accessPool_.data() + node.ins_.off, node.ins_.len};
}

std::span<const IndexVar>
Graph::domainVars(const Node &node) const
{
    return {varPool_.data() + node.dvars_.off, node.dvars_.len};
}

std::span<const IndexExpr>
Graph::coords(const Access &access) const
{
    return {coordPool_.data() + access.coords.off, access.coords.len};
}

PoolSpan
Graph::internCoords(std::span<const IndexExpr> cs)
{
    const PoolSpan s{static_cast<uint32_t>(coordPool_.size()),
                     static_cast<uint32_t>(cs.size())};
    coordPool_.insert(coordPool_.end(), cs.begin(), cs.end());
    return s;
}

Access
Graph::makeAccess(ValueId v, std::span<const IndexExpr> cs)
{
    return Access{v, internCoords(cs)};
}

Access
Graph::importAccess(const Graph &src, const Access &a)
{
    if (&src == this)
        return a;
    return Access{a.value, internCoords(src.coords(a))};
}

void
Graph::appendAccess(PoolSpan &s, Access a)
{
    if (static_cast<size_t>(s.off) + s.len != accessPool_.size()) {
        // The run is not at the arena tail: relocate it there first. The
        // index loop (not insert) is deliberate — the source range lives
        // in the vector being appended to.
        const auto noff = static_cast<uint32_t>(accessPool_.size());
        for (uint32_t i = 0; i < s.len; ++i)
            accessPool_.push_back(accessPool_[s.off + i]);
        s.off = noff;
    }
    accessPool_.push_back(a);
    ++s.len;
}

void
Graph::addOutput(Node &node, Access access)
{
    appendAccess(node.outs_, access);
}

void
Graph::addDomainVar(Node &node, IndexVar var)
{
    PoolSpan &s = node.dvars_;
    if (static_cast<size_t>(s.off) + s.len != varPool_.size()) {
        const auto noff = static_cast<uint32_t>(varPool_.size());
        for (uint32_t i = 0; i < s.len; ++i)
            varPool_.push_back(varPool_[s.off + i]);
        s.off = noff;
    }
    varPool_.push_back(std::move(var));
    ++s.len;
}

void
Graph::setDomainVars(Node &node, std::span<const IndexVar> vars)
{
    node.dvars_ = PoolSpan{static_cast<uint32_t>(varPool_.size()),
                           static_cast<uint32_t>(vars.size())};
    varPool_.insert(varPool_.end(), vars.begin(), vars.end());
}

void
Graph::rebuildUses() const
{
    useCells_.assign(values.size(), UseCell{});
    // Two passes over the live nodes: count per-value references, prefix
    // sum into offsets, then fill — one tight CSR, no per-value vectors.
    for (const Node &node : nodes_) {
        if (!node.live_)
            continue;
        for (const auto &in : ins(node)) {
            if (in.value >= 0)
                ++useCells_[static_cast<size_t>(in.value)].cap;
        }
        if (node.base >= 0)
            ++useCells_[static_cast<size_t>(node.base)].cap;
    }
    uint32_t total = 0;
    for (auto &cell : useCells_) {
        cell.off = total;
        total += cell.cap;
    }
    usePool_.resize(total);
    for (const Node &node : nodes_) {
        if (!node.live_)
            continue;
        auto put = [&](ValueId v) {
            if (v < 0)
                return;
            UseCell &cell = useCells_[static_cast<size_t>(v)];
            usePool_[cell.off + cell.len++] = node.id;
        };
        for (const auto &in : ins(node))
            put(in.value);
        put(node.base);
    }
    usesValid_ = true;
}

std::span<const NodeId>
Graph::uses(ValueId v) const
{
    if (!usesValid_)
        rebuildUses();
    if (v < 0 || static_cast<size_t>(v) >= useCells_.size())
        panic("uses(): value id out of range");
    const UseCell &cell = useCells_[static_cast<size_t>(v)];
    return {usePool_.data() + cell.off, cell.len};
}

void
Graph::noteUse(ValueId v, NodeId n)
{
    if (!usesValid_ || v < 0)
        return;
    UseCell &cell = useCells_[static_cast<size_t>(v)];
    if (cell.len == cell.cap) {
        // Full: relocate the cell to the arena tail with doubled
        // capacity (the old run becomes garbage until compact()).
        const uint32_t ncap = std::max<uint32_t>(4, cell.cap * 2);
        const auto noff = static_cast<uint32_t>(usePool_.size());
        usePool_.resize(usePool_.size() + ncap);
        std::copy_n(usePool_.begin() + cell.off, cell.len,
                    usePool_.begin() + noff);
        cell.off = noff;
        cell.cap = ncap;
    }
    usePool_[cell.off + cell.len++] = n;
}

void
Graph::dropUse(ValueId v, NodeId n)
{
    if (!usesValid_ || v < 0)
        return;
    UseCell &cell = useCells_[static_cast<size_t>(v)];
    for (uint32_t i = 0; i < cell.len; ++i) {
        if (usePool_[cell.off + i] == n) {
            usePool_[cell.off + i] = usePool_[cell.off + cell.len - 1];
            --cell.len;
            return;
        }
    }
    panic("use cache missing an entry being removed");
}

std::vector<std::vector<NodeId>>
Graph::consumers() const
{
    std::vector<std::vector<NodeId>> out(values.size());
    if (usesValid_) {
        // Derive from the incremental cache: each cell holds the same
        // multiset a from-scratch walk produces; sorting restores the
        // ascending-by-node-id order the walk emits.
        for (size_t v = 0; v < useCells_.size(); ++v) {
            const UseCell &cell = useCells_[v];
            auto &list = out[v];
            list.assign(usePool_.begin() + cell.off,
                        usePool_.begin() + cell.off + cell.len);
            std::sort(list.begin(), list.end());
        }
        return out;
    }
    for (const Node &node : nodes_) {
        if (!node.live_)
            continue;
        auto touch = [&](ValueId v) {
            if (v >= 0)
                out[static_cast<size_t>(v)].push_back(node.id);
        };
        for (const auto &in : ins(node))
            touch(in.value);
        touch(node.base);
    }
    return out;
}

std::vector<Edge>
Graph::edges() const
{
    std::vector<Edge> out;
    const auto cons = consumers();
    for (const auto &v : values) {
        for (NodeId dst : cons[static_cast<size_t>(v.id)])
            out.push_back(Edge{v.producer, dst, v.id});
    }
    for (ValueId v : outputs)
        out.push_back(Edge{value(v).producer, -1, v});
    return out;
}

void
Graph::addInput(Node &node, Access access)
{
    noteUse(access.value, node.id);
    appendAccess(node.ins_, access);
}

void
Graph::setInput(Node &node, size_t slot, Access access)
{
    if (slot >= node.ins_.len)
        panic("setInput(): slot out of range");
    Access &dst = accessPool_[node.ins_.off + slot];
    if (dst.value != access.value) {
        dropUse(dst.value, node.id);
        noteUse(access.value, node.id);
    }
    dst = access;
}

void
Graph::setInputs(Node &node, std::vector<Access> ins)
{
    for (uint32_t i = 0; i < node.ins_.len; ++i)
        dropUse(accessPool_[node.ins_.off + i].value, node.id);
    node.ins_ = PoolSpan{static_cast<uint32_t>(accessPool_.size()),
                         static_cast<uint32_t>(ins.size())};
    accessPool_.insert(accessPool_.end(), ins.begin(), ins.end());
    for (const auto &in : ins)
        noteUse(in.value, node.id);
}

void
Graph::setBase(Node &node, ValueId base)
{
    if (node.base != base) {
        dropUse(node.base, node.id);
        noteUse(base, node.id);
    }
    node.base = base;
}

void
Graph::eraseNode(NodeId id)
{
    if (id < 0 || static_cast<size_t>(id) >= nodes_.size())
        panic("eraseNode(): id out of range");
    Node &node = nodes_[static_cast<size_t>(id)];
    if (!node.live_)
        return;
    if (usesValid_) {
        for (const auto &in : ins(node))
            dropUse(in.value, id);
        dropUse(node.base, id);
    }
    node.live_ = false;
    // Drop per-node payload eagerly; the arena runs become garbage that
    // the next compact() retires.
    node.ins_ = node.outs_ = node.dvars_ = PoolSpan{};
    node.predicate = IndexExpr{};
    node.hasPredicate = false;
    node.base = -1;
    node.subgraph.reset();
}

void
Graph::compact()
{
    std::vector<Access> access_tight;
    std::vector<IndexExpr> coord_tight;
    std::vector<IndexVar> var_tight;
    access_tight.reserve(accessPool_.size());
    coord_tight.reserve(coordPool_.size());
    var_tight.reserve(varPool_.size());

    auto move_coords = [&](PoolSpan s) {
        const PoolSpan ns{static_cast<uint32_t>(coord_tight.size()), s.len};
        for (uint32_t i = 0; i < s.len; ++i)
            coord_tight.push_back(std::move(coordPool_[s.off + i]));
        return ns;
    };
    auto move_accesses = [&](PoolSpan s) {
        const PoolSpan ns{static_cast<uint32_t>(access_tight.size()), s.len};
        for (uint32_t i = 0; i < s.len; ++i) {
            Access a = accessPool_[s.off + i];
            a.coords = move_coords(a.coords);
            access_tight.push_back(a);
        }
        return ns;
    };

    for (Node &node : nodes_) {
        if (!node.live_)
            continue;
        node.ins_ = move_accesses(node.ins_);
        node.outs_ = move_accesses(node.outs_);
        const PoolSpan nv{static_cast<uint32_t>(var_tight.size()),
                          node.dvars_.len};
        for (uint32_t i = 0; i < node.dvars_.len; ++i)
            var_tight.push_back(std::move(varPool_[node.dvars_.off + i]));
        node.dvars_ = nv;
        if (node.subgraph)
            node.subgraph->compact();
    }
    accessPool_ = std::move(access_tight);
    coordPool_ = std::move(coord_tight);
    varPool_ = std::move(var_tight);
    if (usesValid_)
        rebuildUses(); // tight CSR, no relocation slack
}

std::unique_ptr<Graph>
Graph::clone() const
{
    auto out = std::make_unique<Graph>();
    out->name = name;
    out->domain = domain;
    out->values = values;
    out->inputs = inputs;
    out->outputs = outputs;
    out->context = context;
    // The arenas copy as flat vectors; spans carry over verbatim.
    out->accessPool_ = accessPool_;
    out->coordPool_ = coordPool_;
    out->varPool_ = varPool_;
    out->nodes_.reserve(nodes_.size());
    for (const Node &node : nodes_) {
        Node &copy = out->nodes_.emplace_back();
        copy.id = node.id;
        copy.kind = node.kind;
        copy.op = node.op;
        copy.domain = node.domain;
        copy.predicate = node.predicate;
        copy.hasPredicate = node.hasPredicate;
        copy.base = node.base;
        copy.cval = node.cval;
        copy.ins_ = node.ins_;
        copy.outs_ = node.outs_;
        copy.dvars_ = node.dvars_;
        copy.live_ = node.live_;
        if (node.subgraph)
            copy.subgraph = node.subgraph->clone();
    }
    if (usesValid_) {
        out->useCells_ = useCells_;
        out->usePool_ = usePool_;
        out->usesValid_ = true;
    }
    return out;
}

ValueId
Graph::findValueByName(const std::string &name) const
{
    if (!namesValid_) {
        nameIndex_.clear();
        nameIndex_.reserve(values.size());
        for (const auto &v : values)
            nameIndex_.emplace(v.md.name, v.id); // first value wins
        namesValid_ = true;
    }
    const auto it = nameIndex_.find(name);
    return it == nameIndex_.end() ? -1 : it->second;
}

size_t
Graph::arenaBytes() const
{
    size_t bytes = nodes_.capacity() * sizeof(Node) +
                   values.capacity() * sizeof(Value) +
                   accessPool_.capacity() * sizeof(Access) +
                   coordPool_.capacity() * sizeof(IndexExpr) +
                   varPool_.capacity() * sizeof(IndexVar) +
                   useCells_.capacity() * sizeof(UseCell) +
                   usePool_.capacity() * sizeof(NodeId);
    for (const Node &node : nodes_) {
        if (node.subgraph)
            bytes += node.subgraph->arenaBytes();
    }
    return bytes;
}

void
Graph::validate() const
{
    auto check_span = [&](PoolSpan s, size_t pool_size, const char *what) {
        if (static_cast<size_t>(s.off) + s.len > pool_size)
            panic(std::string(what) + " span out of arena bounds in graph " +
                  this->name);
    };
    for (const Node &node : nodes_) {
        // Tombstones keep (zeroed) spans; bounds must hold regardless.
        check_span(node.ins_, accessPool_.size(), "ins");
        check_span(node.outs_, accessPool_.size(), "outs");
        check_span(node.dvars_, varPool_.size(), "domainVars");
        if (!node.live_)
            continue;
        const int nvars = static_cast<int>(node.dvars_.len);
        auto check_access = [&](const Access &a, bool is_output) {
            check_span(a.coords, coordPool_.size(), "coords");
            const auto cs = coords(a);
            if (a.isIndexOperand()) {
                if (cs.size() != 1)
                    panic("index operand must carry exactly one coord");
            } else if (a.value < 0 ||
                       static_cast<size_t>(a.value) >= values.size()) {
                panic("access references bad value id");
            } else if (!cs.empty()) {
                const auto &v = value(a.value);
                if (static_cast<int>(cs.size()) !=
                    std::max(v.md.shape.rank(), 0)) {
                    panic("access coord count does not match value rank in "
                          "graph " + this->name);
                }
            }
            for (const auto &c : cs) {
                if (c.varCount() > nvars)
                    panic("access coord references var beyond domain");
            }
            if (is_output && !a.isIndexOperand()) {
                const auto &v = value(a.value);
                if (v.producer != node.id)
                    panic("output value's producer link is stale");
            }
        };
        for (const auto &in : ins(node))
            check_access(in, false);
        for (const auto &out : outs(node))
            check_access(out, true);
        if (node.hasPredicate && node.predicate.varCount() > nvars)
            panic("predicate references var beyond domain");
        switch (node.kind) {
          case NodeKind::Constant:
            if (node.outs_.len != 1)
                panic("constant must have one output");
            break;
          case NodeKind::Map:
            if (node.outs_.len != 1)
                panic("map must have one output");
            if (mapOpArity(node.op) != static_cast<int>(node.ins_.len))
                panic("map op '" + node.op.str() + "' arity mismatch");
            break;
          case NodeKind::Reduce:
            if (node.outs_.len != 1 || node.ins_.len != 1)
                panic("reduce must have one input and one output");
            break;
          case NodeKind::Component:
            if (!node.subgraph)
                panic("component node lacks a subgraph");
            node.subgraph->validate();
            if (node.subgraph->inputs.size() != node.ins_.len)
                panic("component input binding count mismatch");
            if (node.subgraph->outputs.size() != node.outs_.len)
                panic("component output binding count mismatch");
            break;
        }
    }
    for (ValueId v : inputs) {
        if (value(v).producer != -1)
            panic("graph input has a producer");
    }
    for (const auto &v : values) {
        if (v.producer >= 0) {
            const Node *p = node(v.producer);
            if (!p)
                continue; // producer erased; passes must clean up uses
            bool found = false;
            for (const auto &out : outs(*p))
                found = found || out.value == v.id;
            if (!found)
                panic("value's producer does not list it as an output");
        }
    }
    if (usesValid_) {
        // The incremental use cache must agree with a from-scratch
        // recomputation, as multisets per value (a node appears once per
        // referencing access, in no particular order).
        if (useCells_.size() != values.size())
            panic("use cache is stale: value count mismatch in graph " +
                  this->name);
        std::vector<std::vector<NodeId>> fresh(values.size());
        for (const Node &node : nodes_) {
            if (!node.live_)
                continue;
            for (const auto &in : ins(node)) {
                if (in.value >= 0)
                    fresh[static_cast<size_t>(in.value)].push_back(node.id);
            }
            if (node.base >= 0)
                fresh[static_cast<size_t>(node.base)].push_back(node.id);
        }
        for (size_t v = 0; v < fresh.size(); ++v) {
            const UseCell &cell = useCells_[v];
            if (cell.len > cell.cap)
                panic("use cell len exceeds cap in graph " + this->name);
            if (static_cast<size_t>(cell.off) + cell.cap > usePool_.size() &&
                cell.cap != 0)
                panic("use cell out of arena bounds in graph " + this->name);
            std::vector<NodeId> cached(usePool_.begin() + cell.off,
                                       usePool_.begin() + cell.off +
                                           cell.len);
            auto &expect = fresh[v];
            std::sort(cached.begin(), cached.end());
            std::sort(expect.begin(), expect.end());
            if (cached != expect)
                panic("use cache is stale for value %" + std::to_string(v) +
                      " in graph " + this->name);
        }
    }
    if (namesValid_) {
        // The name index must match a first-wins from-scratch rebuild.
        std::unordered_map<std::string, ValueId> fresh_names;
        fresh_names.reserve(values.size());
        for (const auto &v : values)
            fresh_names.emplace(v.md.name, v.id);
        if (fresh_names != nameIndex_)
            panic("name index is stale in graph " + this->name +
                  " (missing touchNames() after a rename?)");
    }
}

} // namespace polymath::ir
