/**
 * @file
 * The simultaneous-recursive dataflow graph (srDFG), Section III.
 *
 * An srDFG is a pair (N, E): nodes are PMLang operations and edges carry
 * operand metadata (dtype, type modifier, shape). The graph is *recursive*:
 * a Component node owns a lower-granularity srDFG of its own, and Map/Reduce
 * nodes can materialize their scalar-level subgraphs on demand — this is
 * what gives the compiler simultaneous access to every granularity of the
 * computation and makes the IR a bridge to accelerators that consume
 * different operation granularities.
 *
 * Representation notes:
 *  - Values (SSA versions of tensors) are stored once per graph; an "edge"
 *    in the paper's (src, dst, md) form is the pairing of a value with one
 *    of its consumers, enumerated by Graph::edges().
 *  - Map nodes apply one scalar op element-wise over an iteration domain;
 *    input accesses are integer gather maps and the output access is a
 *    scatter map, so strided/conditional indexing is closed-form.
 *  - Reduce nodes fold a group op (sum/prod/max/min or a user-defined
 *    reduction) over the axes of their domain marked `reduced`, under an
 *    optional Boolean guard.
 *  - Scalar-level granularity is available through Node::scalarOpCount()
 *    (analytic, always cheap) and Graph/Node materialization in
 *    expand.h (explicit scalar subgraphs, bounded by a node budget).
 *
 * Storage model (structure-of-arrays, DESIGN.md "IR internals"):
 *  - Nodes live by value in one contiguous pool indexed by NodeId.
 *    eraseNode() tombstones the slot (ids stay stable; node() returns
 *    nullptr for tombstones); compact() retires the garbage the
 *    tombstones leave behind in the side pools without renumbering.
 *  - Every small per-node sequence — input/output Access lists, the
 *    IndexExpr coords of each access, the IndexVars of the iteration
 *    domain, and the per-value use lists — lives in a per-Graph bump
 *    arena and is referenced by a {offset, len} PoolSpan instead of an
 *    owning vector. Appending past a span's end relocates the run to
 *    the arena tail (amortized O(1)); the abandoned run is garbage
 *    until the next compact().
 *  - clone() is therefore a handful of flat vector copies plus a
 *    field-copy loop over the node pool, and passes walk dense arrays
 *    through the span accessors (ins/outs/coords/domainVars) instead
 *    of chasing per-node heap allocations.
 *
 * Aliasing rule: spans returned by the accessors (and uses()) point into
 * the arenas and are invalidated by any mutation of the same graph —
 * re-fetch after addNode/addInput/addOutput/addDomainVar/setInputs.
 * Pooled coords are immutable once interned; it is fine (and common,
 * e.g. replaceUses) for two accesses to share one coord span.
 */
#ifndef POLYMATH_SRDFG_GRAPH_H_
#define POLYMATH_SRDFG_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dtype.h"
#include "core/shape.h"
#include "pmlang/ast.h"
#include "srdfg/index_expr.h"
#include "srdfg/op.h"

namespace polymath::ir {

using lang::Domain;

/** Role of a value at its graph's boundary (paper's type modifiers plus
 *  Internal for intermediate operands that never leave the graph). */
enum class EdgeKind : uint8_t { Input, Output, State, Param, Internal };

/** Returns "input"/"output"/"state"/"param"/"internal". */
std::string toString(EdgeKind k);

/** Converts a PMLang argument modifier to its edge kind. */
EdgeKind edgeKindFor(lang::Modifier m);

/** Metadata carried on every srDFG edge (Section III-A). */
struct EdgeMeta
{
    DType dtype = DType::Float;
    EdgeKind kind = EdgeKind::Internal;
    Shape shape;
    std::string name; ///< PMLang variable name; "" for unnamed intermediates
};

using ValueId = int32_t;
using NodeId = int32_t;

/** An SSA value: one version of a tensor flowing between nodes. */
struct Value
{
    ValueId id = -1;
    EdgeMeta md;
    NodeId producer = -1; ///< -1: graph input (no producing node)
};

/** A {offset, len} run inside one of the owning Graph's arenas. Which
 *  arena is determined by context (coords -> coord pool, node operand
 *  lists -> access pool, domain vars -> var pool). */
struct PoolSpan
{
    uint32_t off = 0;
    uint32_t len = 0;
};

/**
 * An operand access: which value is read/written and how its coordinates
 * derive from the owning node's iteration domain.
 *
 * - value >= 0, coords of size rank: gather/scatter map.
 * - value >= 0, coords empty: whole-value access (component bindings,
 *   scalar operands).
 * - value == kIndexOperand with one coord: the integer value of an index
 *   expression used as data (e.g. `y[i] = i * 2`).
 *
 * `coords` is a span into the owning Graph's coord arena; resolve it
 * with Graph::coords(access). Pooled coords are immutable — build new
 * ones with Graph::makeAccess / internCoords.
 */
struct Access
{
    static constexpr ValueId kIndexOperand = -2;

    ValueId value = -1;
    PoolSpan coords;

    bool isIndexOperand() const { return value == kIndexOperand; }
    bool hasCoords() const { return coords.len != 0; }
};

/** One iteration-domain variable of a Map/Reduce node. */
struct IndexVar
{
    std::string name;
    int64_t extent = 1;
    bool reduced = false; ///< Reduce nodes: axis folded by the group op
};

/** Node kinds at the statement level of the srDFG. */
enum class NodeKind : uint8_t {
    Constant,  ///< scalar literal
    Map,       ///< element-wise scalar op over an iteration domain
    Reduce,    ///< group reduction over the `reduced` axes of its domain
    Component, ///< PMLang component instantiation; owns a subgraph
};

class Graph;

/** One srDFG node: (name, srdfg) in the paper's terms. Lives by value in
 *  the owning Graph's node pool; operand/domain sequences are spans into
 *  the graph's arenas, resolved through Graph::ins/outs/domainVars. */
class Node
{
  public:
    NodeId id = -1;
    NodeKind kind = NodeKind::Map;

    /** Operation: an interned name (op.h). Builtin scalar ops ("add",
     *  "mul", "sigmoid", ...), group ops ("sum", "prod"), and "const"/
     *  "identity" are OpCode enumerators; custom reduction names and
     *  component names are interned symbols. op.str() is the exact source
     *  spelling for printing/serialization. */
    Op op;

    /** Target domain this node is annotated with / inherits. */
    Domain domain = Domain::None;

    /** Optional Boolean guard over the domain vars (Reduce only). */
    IndexExpr predicate;
    bool hasPredicate = false;

    /** Previous version of the output tensor for partial writes;
     *  -1 means unwritten points read as zero. */
    ValueId base = -1;

    /** Constant nodes: the literal value. */
    double cval = 0.0;

    /** Component nodes: the lower-granularity srDFG. */
    std::unique_ptr<Graph> subgraph;

    /** False once eraseNode() tombstoned this slot. */
    bool live() const { return live_; }

    /** Total iteration points of the domain. */
    int64_t domainSize(const Graph &g) const;

    /** Product of extents of `reduced` axes (1 when none). */
    int64_t reduceSize(const Graph &g) const;

    /** Scalar operations this node represents at the finest granularity
     *  (recursing into component subgraphs). "identity" moves count 0. */
    int64_t scalarOpCount(const Graph &g) const;

    /** Names of the domain variables, by slot (for printing). */
    std::vector<std::string> domainVarNames(const Graph &g) const;

  private:
    friend class Graph;

    PoolSpan ins_;   ///< access arena: input accesses
    PoolSpan outs_;  ///< access arena: output accesses
    PoolSpan dvars_; ///< var arena: iteration domain (Map/Reduce)
    bool live_ = true;
};

/** Shared per-program context: user-defined reductions, visible at every
 *  recursion level. */
struct IrContext
{
    /** name -> (paramA, paramB, body expression) */
    std::map<std::string, const lang::ReductionDecl *> reductions;

    /** Keeps the parsed program alive for the reduction bodies above. */
    std::shared_ptr<const lang::Program> program;
};

/** The paper's edge view: (src, dst, md). src/dst of -1 denote the graph
 *  boundary. */
struct Edge
{
    NodeId src = -1;
    NodeId dst = -1;
    ValueId value = -1;
};

/** One level of the srDFG. */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph &) = delete;
    Graph &operator=(const Graph &) = delete;
    Graph(Graph &&) = default;
    Graph &operator=(Graph &&) = default;

    std::string name;
    Domain domain = Domain::None;

    /** Values, indexed by ValueId. */
    std::vector<Value> values;

    /** Boundary values in PMLang argument order. */
    std::vector<ValueId> inputs;
    std::vector<ValueId> outputs;

    /** Shared program context (custom reductions). */
    std::shared_ptr<IrContext> context;

    /** Creates a value; returns its id. */
    ValueId addValue(EdgeMeta md, NodeId producer = -1);

    /** Creates a node of @p kind in the node pool; returns its id (NOT a
     *  reference: the pool may relocate on growth, so never hold Node
     *  pointers/references across addNode). The node starts with no
     *  inputs, so the use cache stays valid; add its inputs through
     *  addInput/setInputs (or touchUses() after raw mutation). */
    NodeId addNode(NodeKind kind, Op op);

    Value &value(ValueId id);
    const Value &value(ValueId id) const;

    /** Node by id; nullptr when the slot is tombstoned. */
    Node *node(NodeId id);
    const Node *node(NodeId id) const;

    /** Node-pool slot count (tombstones included); NodeIds are < this. */
    size_t nodeCount() const { return nodes_.size(); }

    /** The whole node pool, tombstones included — check node.live() when
     *  iterating. Invalidated by addNode. */
    std::span<Node> nodePool() { return nodes_; }
    std::span<const Node> nodePool() const { return nodes_; }

    /** Number of live (non-erased) nodes at this level. */
    int64_t liveNodeCount() const;

    /** Scalar-op total across this level, recursing into components. */
    int64_t scalarOpCount() const;

    /** Input accesses of @p node. Select maps have 3; binary 2; unary 1. */
    std::span<const Access> ins(const Node &node) const;

    /** Output accesses of @p node. Map/Reduce/Constant have exactly 1;
     *  Component has one per callee output/state formal. */
    std::span<const Access> outs(const Node &node) const;

    /** Mutable outs view, for producer rewiring (out.value) and coord
     *  replacement. Keep Value::producer links consistent yourself. */
    std::span<Access> outsMut(Node &node);

    /** Mutable ins view — raw surgery that bypasses the use cache; call
     *  touchUses() afterwards (or use setInput/setInputs instead). */
    std::span<Access> insMut(Node &node);

    /** Iteration-domain variables of @p node. */
    std::span<const IndexVar> domainVars(const Node &node) const;

    /** Coordinate expressions of @p access (resolved in this graph's
     *  coord arena — only valid for accesses owned by this graph). */
    std::span<const IndexExpr> coords(const Access &access) const;

    /** Copies @p cs into the coord arena and returns its span. @p cs must
     *  not alias this graph's own coord pool (use importAccess to copy
     *  between graphs). */
    PoolSpan internCoords(std::span<const IndexExpr> cs);

    /** Builds an access with freshly interned coords. */
    Access makeAccess(ValueId v, std::span<const IndexExpr> cs);

    /** Whole-value access (no coords). */
    static Access makeAccess(ValueId v) { return Access{v, {}}; }

    /** Re-interns @p a (an access of @p src) into this graph's arenas.
     *  The value id is copied verbatim — remap it separately when the
     *  graphs number values differently. */
    Access importAccess(const Graph &src, const Access &a);

    /** Appends @p access to @p node's outputs. */
    void addOutput(Node &node, Access access);

    /** Appends @p var to @p node's iteration domain. */
    void addDomainVar(Node &node, IndexVar var);

    /** Replaces @p node's iteration domain. */
    void setDomainVars(Node &node, std::span<const IndexVar> vars);

    /**
     * Use list of value @p v: one entry per referencing access (every
     * `ins` entry plus `base`) across the live nodes of this level, so a
     * node appears once per reference. Built lazily on first call as one
     * tight CSR over the use arena and maintained incrementally by
     * eraseNode and the mutation helpers below — O(1) amortized instead
     * of the O(V+E) consumers() rebuild. Raw span surgery must go
     * through the helpers or be followed by touchUses(); validate()
     * cross-checks the cache. The returned span is invalidated by any
     * use-cache mutation (copy it before mutating while iterating).
     */
    std::span<const NodeId> uses(ValueId v) const;

    /** True when the use cache is currently live (uses() was called and
     *  no raw mutation invalidated it). */
    bool usesCached() const { return usesValid_; }

    /** Drops the use cache after raw ins/base surgery (e.g. splicing a
     *  subgraph); the next uses() call rebuilds it. */
    void touchUses() { usesValid_ = false; }

    /** Appends @p access to @p node's inputs, keeping the use cache. */
    void addInput(Node &node, Access access);

    /** Replaces input @p slot of @p node, keeping the use cache. */
    void setInput(Node &node, size_t slot, Access access);

    /** Replaces all inputs of @p node, keeping the use cache. */
    void setInputs(Node &node, std::vector<Access> ins);

    /** Sets @p node's base value, keeping the use cache. */
    void setBase(Node &node, ValueId base);

    /** Erases node @p id (tombstones the slot; ids remain stable),
     *  removing its entries from the use cache. Its arena runs become
     *  garbage until compact(). */
    void eraseNode(NodeId id);

    /**
     * Retires arena garbage left by eraseNode/relocations: rewrites the
     * access/coord/var arenas tightly in node order and rebuilds the use
     * CSR when live, recursing into component subgraphs. Ids — node and
     * value — are untouched, so printed and serialized forms are
     * byte-identical across a compact(). Call after a pass pipeline or
     * before long-term retention (snapshots, caches); never required for
     * correctness.
     */
    void compact();

    /** Enumerates paper-style edges at this level: one per
     *  (value, consumer) pair plus boundary output edges. */
    std::vector<Edge> edges() const;

    /** Consumer node ids per value (index = ValueId), ascending by node
     *  id. Derived from the incremental use cache when it is live,
     *  rebuilt from scratch otherwise — both orders agree. */
    std::vector<std::vector<NodeId>> consumers() const;

    /** Deep copy (fresh subgraphs, same context pointer): bulk arena
     *  copies plus a field-copy loop over the node pool. A live use
     *  cache is copied; lazy indexes rebuild on demand. */
    std::unique_ptr<Graph> clone() const;

    /** Finds the first value with boundary name @p name; -1 if absent.
     *  Backed by a lazily built name->id index that addValue keeps
     *  fresh; after renaming an existing value call touchNames(). */
    ValueId findValueByName(const std::string &name) const;

    /** Drops the name->id index after renaming existing values; the next
     *  findValueByName rebuilds it. */
    void touchNames() { namesValid_ = false; }

    /** Bytes currently reserved by this graph's pools and arenas (node,
     *  value, access, coord, var, use storage), recursing into component
     *  subgraphs. Feeds the ir.arena.bytes metric. */
    size_t arenaBytes() const;

    /** Internal consistency check; throws InternalError on violation.
     *  Verifies arena-span bounds, access ranks, domain-slot ranges,
     *  producer links, boundary lists, and — when the lazy caches are
     *  live — that the use CSR and the name index match a from-scratch
     *  rebuild. */
    void validate() const;

  private:
    /** Per-value CSR cell into usePool_; cap >= len, doubling on
     *  relocation to the arena tail. */
    struct UseCell
    {
        uint32_t off = 0;
        uint32_t len = 0;
        uint32_t cap = 0;
    };

    std::vector<Node> nodes_;          ///< node pool, indexed by NodeId
    std::vector<Access> accessPool_;   ///< ins/outs arena
    std::vector<IndexExpr> coordPool_; ///< access-coordinate arena
    std::vector<IndexVar> varPool_;    ///< iteration-domain arena

    /** Lazily built CSR use lists (cell index = ValueId); see uses(). */
    mutable std::vector<UseCell> useCells_;
    mutable std::vector<NodeId> usePool_;
    mutable bool usesValid_ = false;

    /** Lazily built name->id index (first value wins, matching the
     *  linear-scan semantics findValueByName always had). */
    mutable std::unordered_map<std::string, ValueId> nameIndex_;
    mutable bool namesValid_ = false;

    /** Appends @p a to the arena run @p s, relocating the run to the
     *  arena tail first when it is not already there. */
    void appendAccess(PoolSpan &s, Access a);

    void noteUse(ValueId v, NodeId n);
    void dropUse(ValueId v, NodeId n);
    void rebuildUses() const;
};

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_GRAPH_H_
