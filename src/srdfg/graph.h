/**
 * @file
 * The simultaneous-recursive dataflow graph (srDFG), Section III.
 *
 * An srDFG is a pair (N, E): nodes are PMLang operations and edges carry
 * operand metadata (dtype, type modifier, shape). The graph is *recursive*:
 * a Component node owns a lower-granularity srDFG of its own, and Map/Reduce
 * nodes can materialize their scalar-level subgraphs on demand — this is
 * what gives the compiler simultaneous access to every granularity of the
 * computation and makes the IR a bridge to accelerators that consume
 * different operation granularities.
 *
 * Representation notes:
 *  - Values (SSA versions of tensors) are stored once per graph; an "edge"
 *    in the paper's (src, dst, md) form is the pairing of a value with one
 *    of its consumers, enumerated by Graph::edges().
 *  - Map nodes apply one scalar op element-wise over an iteration domain;
 *    input accesses are integer gather maps and the output access is a
 *    scatter map, so strided/conditional indexing is closed-form.
 *  - Reduce nodes fold a group op (sum/prod/max/min or a user-defined
 *    reduction) over the axes of their domain marked `reduced`, under an
 *    optional Boolean guard.
 *  - Scalar-level granularity is available through Node::scalarOpCount()
 *    (analytic, always cheap) and Graph/Node materialization in
 *    expand.h (explicit scalar subgraphs, bounded by a node budget).
 */
#ifndef POLYMATH_SRDFG_GRAPH_H_
#define POLYMATH_SRDFG_GRAPH_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "core/shape.h"
#include "pmlang/ast.h"
#include "srdfg/index_expr.h"
#include "srdfg/op.h"

namespace polymath::ir {

using lang::Domain;

/** Role of a value at its graph's boundary (paper's type modifiers plus
 *  Internal for intermediate operands that never leave the graph). */
enum class EdgeKind : uint8_t { Input, Output, State, Param, Internal };

/** Returns "input"/"output"/"state"/"param"/"internal". */
std::string toString(EdgeKind k);

/** Converts a PMLang argument modifier to its edge kind. */
EdgeKind edgeKindFor(lang::Modifier m);

/** Metadata carried on every srDFG edge (Section III-A). */
struct EdgeMeta
{
    DType dtype = DType::Float;
    EdgeKind kind = EdgeKind::Internal;
    Shape shape;
    std::string name; ///< PMLang variable name; "" for unnamed intermediates
};

using ValueId = int32_t;
using NodeId = int32_t;

/** An SSA value: one version of a tensor flowing between nodes. */
struct Value
{
    ValueId id = -1;
    EdgeMeta md;
    NodeId producer = -1; ///< -1: graph input (no producing node)
};

/**
 * An operand access: which value is read/written and how its coordinates
 * derive from the owning node's iteration domain.
 *
 * - value >= 0, coords of size rank: gather/scatter map.
 * - value >= 0, coords empty: whole-value access (component bindings,
 *   scalar operands).
 * - value == kIndexOperand with one coord: the integer value of an index
 *   expression used as data (e.g. `y[i] = i * 2`).
 */
struct Access
{
    static constexpr ValueId kIndexOperand = -2;

    ValueId value = -1;
    std::vector<IndexExpr> coords;

    bool isIndexOperand() const { return value == kIndexOperand; }
};

/** One iteration-domain variable of a Map/Reduce node. */
struct IndexVar
{
    std::string name;
    int64_t extent = 1;
    bool reduced = false; ///< Reduce nodes: axis folded by the group op
};

/** Node kinds at the statement level of the srDFG. */
enum class NodeKind : uint8_t {
    Constant,  ///< scalar literal
    Map,       ///< element-wise scalar op over an iteration domain
    Reduce,    ///< group reduction over the `reduced` axes of its domain
    Component, ///< PMLang component instantiation; owns a subgraph
};

class Graph;

/** One srDFG node: (name, srdfg) in the paper's terms. */
class Node
{
  public:
    NodeId id = -1;
    NodeKind kind = NodeKind::Map;

    /** Operation: an interned name (op.h). Builtin scalar ops ("add",
     *  "mul", "sigmoid", ...), group ops ("sum", "prod"), and "const"/
     *  "identity" are OpCode enumerators; custom reduction names and
     *  component names are interned symbols. op.str() is the exact source
     *  spelling for printing/serialization. */
    Op op;

    /** Target domain this node is annotated with / inherits. */
    Domain domain = Domain::None;

    /** Iteration domain (Map/Reduce). */
    std::vector<IndexVar> domainVars;

    /** Optional Boolean guard over domainVars (Reduce only). */
    IndexExpr predicate;
    bool hasPredicate = false;

    /** Input accesses. Select maps have 3; binary 2; unary 1. */
    std::vector<Access> ins;

    /** Output accesses. Map/Reduce/Constant have exactly 1; Component has
     *  one per callee output/state formal. */
    std::vector<Access> outs;

    /** Previous version of the output tensor for partial writes;
     *  -1 means unwritten points read as zero. */
    ValueId base = -1;

    /** Constant nodes: the literal value. */
    double cval = 0.0;

    /** Component nodes: the lower-granularity srDFG. */
    std::unique_ptr<Graph> subgraph;

    /** Total iteration points of the domain. */
    int64_t domainSize() const;

    /** Product of extents of `reduced` axes (1 when none). */
    int64_t reduceSize() const;

    /** Scalar operations this node represents at the finest granularity
     *  (recursing into component subgraphs). "identity" moves count 0. */
    int64_t scalarOpCount() const;

    /** Names of the domain variables, by slot (for printing). */
    std::vector<std::string> domainVarNames() const;
};

/** Shared per-program context: user-defined reductions, visible at every
 *  recursion level. */
struct IrContext
{
    /** name -> (paramA, paramB, body expression) */
    std::map<std::string, const lang::ReductionDecl *> reductions;

    /** Keeps the parsed program alive for the reduction bodies above. */
    std::shared_ptr<const lang::Program> program;
};

/** The paper's edge view: (src, dst, md). src/dst of -1 denote the graph
 *  boundary. */
struct Edge
{
    NodeId src = -1;
    NodeId dst = -1;
    ValueId value = -1;
};

/** One level of the srDFG. */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph &) = delete;
    Graph &operator=(const Graph &) = delete;
    Graph(Graph &&) = default;
    Graph &operator=(Graph &&) = default;

    std::string name;
    Domain domain = Domain::None;

    /** Values, indexed by ValueId. */
    std::vector<Value> values;

    /** Nodes, indexed by NodeId (entries may be null after erasure). */
    std::vector<std::unique_ptr<Node>> nodes;

    /** Boundary values in PMLang argument order. */
    std::vector<ValueId> inputs;
    std::vector<ValueId> outputs;

    /** Shared program context (custom reductions). */
    std::shared_ptr<IrContext> context;

    /** Creates a value; returns its id. */
    ValueId addValue(EdgeMeta md, NodeId producer = -1);

    /** Creates a node of @p kind; returns a reference owned by the graph.
     *  The node starts with no inputs, so the use cache stays valid; add
     *  its inputs through addInput/setInputs (or touchUses() after raw
     *  mutation). */
    Node &addNode(NodeKind kind, Op op);

    Value &value(ValueId id);
    const Value &value(ValueId id) const;
    Node *node(NodeId id);
    const Node *node(NodeId id) const;

    /** Number of live (non-erased) nodes at this level. */
    int64_t liveNodeCount() const;

    /** Scalar-op total across this level, recursing into components. */
    int64_t scalarOpCount() const;

    /** Enumerates paper-style edges at this level: one per
     *  (value, consumer) pair plus boundary output edges. */
    std::vector<Edge> edges() const;

    /** Consumer node ids per value (index = ValueId). */
    std::vector<std::vector<NodeId>> consumers() const;

    /**
     * Use list of value @p v: one entry per referencing access (every
     * `ins` entry plus `base`) across the live nodes of this level, so a
     * node appears once per reference. Built lazily on first call and
     * maintained incrementally by eraseNode and the mutation helpers
     * below — O(1) amortized instead of the O(V+E) consumers() rebuild.
     * Raw writes to Node::ins/base must go through the helpers or be
     * followed by touchUses(); validate() cross-checks the cache.
     */
    const std::vector<NodeId> &uses(ValueId v) const;

    /** True when the use cache is currently live (uses() was called and
     *  no raw mutation invalidated it). */
    bool usesCached() const { return usesValid_; }

    /** Drops the use cache after raw ins/base surgery (e.g. splicing a
     *  subgraph); the next uses() call rebuilds it. */
    void touchUses() { usesValid_ = false; }

    /** Appends @p access to @p node's inputs, keeping the use cache. */
    void addInput(Node &node, Access access);

    /** Replaces input @p slot of @p node, keeping the use cache. */
    void setInput(Node &node, size_t slot, Access access);

    /** Replaces all inputs of @p node, keeping the use cache. */
    void setInputs(Node &node, std::vector<Access> ins);

    /** Sets @p node's base value, keeping the use cache. */
    void setBase(Node &node, ValueId base);

    /** Erases node @p id (clears the slot; ids remain stable), removing
     *  its entries from the use cache. */
    void eraseNode(NodeId id);

    /** Deep copy (fresh subgraphs, same context pointer). */
    std::unique_ptr<Graph> clone() const;

    /** Finds the first value with boundary name @p name; -1 if absent. */
    ValueId findValueByName(const std::string &name) const;

    /** Internal consistency check; throws InternalError on violation.
     *  Verifies access ranks, domain-slot ranges, producer links,
     *  boundary lists, and — when the use cache is live — that it
     *  matches a from-scratch recomputation. */
    void validate() const;

  private:
    /** Lazily built use lists (index = ValueId); see uses(). */
    mutable std::vector<std::vector<NodeId>> uses_;
    mutable bool usesValid_ = false;

    void noteUse(ValueId v, NodeId n);
    void dropUse(ValueId v, NodeId n);
    void rebuildUses() const;
};

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_GRAPH_H_
