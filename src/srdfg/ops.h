/**
 * @file
 * Scalar-operation semantics shared by the interpreter, the constant
 * folder, and the backends' functional checks.
 */
#ifndef POLYMATH_SRDFG_OPS_H_
#define POLYMATH_SRDFG_OPS_H_

#include <complex>
#include <cstdint>
#include <span>

#include "srdfg/op.h"

namespace polymath::ir {

/** Resolved scalar op codes for fast per-point dispatch. */
enum class ScalarOp : uint8_t {
    Add, Sub, Mul, Div, Mod, Pow, Min, Max,
    Lt, Le, Gt, Ge, Eq, Ne, And, Or,
    Neg, Not, Identity, Select,
    Sin, Cos, Tan, Exp, Ln, Sqrt, Abs, Sigmoid, Relu, Tanh, Erf,
    Sign, Floor, Ceil, Gauss, Re, Im, Conj,
};

/** Maps an srDFG map op to its semantic code (a direct table lookup on
 *  the OpCode; "ln" and "log" both resolve to ScalarOp::Ln).
 *  @throws InternalError for ops without map-level semantics. */
ScalarOp resolveScalarOp(Op op);

/** Applies @p op to real arguments (size must match the op's arity). */
double applyScalarOp(ScalarOp op, std::span<const double> args);

/** Applies @p op to complex arguments.
 *  @throws UserError for ops without complex semantics. */
std::complex<double> applyScalarOpComplex(
    ScalarOp op, std::span<const std::complex<double>> args);

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_OPS_H_
