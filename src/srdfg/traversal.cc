#include "srdfg/traversal.h"

#include <algorithm>
#include <set>

#include "core/error.h"

namespace polymath::ir {

std::vector<NodeId>
topoOrder(const Graph &graph)
{
    // Kahn's algorithm over value-mediated dependencies.
    std::vector<int> pending; // per node: unproduced input values
    std::vector<std::vector<NodeId>> waiters(graph.values.size());
    std::vector<NodeId> ready;
    std::vector<NodeId> order;

    auto value_ready = [&](ValueId v) {
        return v < 0 || graph.value(v).producer < 0 ||
               !graph.node(graph.value(v).producer);
    };

    pending.assign(graph.nodeCount(), 0);
    for (const Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        int count = 0;
        auto add_dep = [&](ValueId v) {
            if (v >= 0 && !value_ready(v)) {
                ++count;
                waiters[static_cast<size_t>(v)].push_back(node.id);
            }
        };
        for (const auto &in : graph.ins(node))
            add_dep(in.value);
        add_dep(node.base);
        pending[static_cast<size_t>(node.id)] = count;
        if (count == 0)
            ready.push_back(node.id);
    }

    while (!ready.empty()) {
        const NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (const auto &out : graph.outs(*graph.node(id))) {
            if (out.value < 0)
                continue;
            for (NodeId w : waiters[static_cast<size_t>(out.value)]) {
                if (--pending[static_cast<size_t>(w)] == 0)
                    ready.push_back(w);
            }
        }
    }

    if (static_cast<int64_t>(order.size()) != graph.liveNodeCount())
        panic("srDFG level contains a dataflow cycle");
    return order;
}

void
forEachNodeRecursive(Graph &graph,
                     const std::function<void(Graph &, Node &)> &fn)
{
    for (Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        fn(graph, node);
        if (node.subgraph)
            forEachNodeRecursive(*node.subgraph, fn);
    }
}

void
forEachNodeRecursive(
    const Graph &graph,
    const std::function<void(const Graph &, const Node &)> &fn)
{
    for (const Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        fn(graph, node);
        if (node.subgraph)
            forEachNodeRecursive(
                static_cast<const Graph &>(*node.subgraph), fn);
    }
}

int
recursionDepth(const Graph &graph)
{
    int depth = 1;
    for (const Node &node : graph.nodePool()) {
        if (node.live() && node.subgraph)
            depth = std::max(depth, 1 + recursionDepth(*node.subgraph));
    }
    return depth;
}

std::vector<ValueId>
deadValues(const Graph &graph)
{
    std::set<ValueId> live;
    for (ValueId v : graph.outputs)
        live.insert(v);
    for (const Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        for (const auto &in : graph.ins(node)) {
            if (in.value >= 0)
                live.insert(in.value);
        }
        if (node.base >= 0)
            live.insert(node.base);
    }
    std::vector<ValueId> dead;
    for (const auto &v : graph.values) {
        if (!live.count(v.id))
            dead.push_back(v.id);
    }
    return dead;
}

} // namespace polymath::ir
