/**
 * @file
 * Text and Graphviz renderings of srDFGs, showing all recursion levels.
 */
#ifndef POLYMATH_SRDFG_PRINTER_H_
#define POLYMATH_SRDFG_PRINTER_H_

#include <string>

#include "srdfg/graph.h"

namespace polymath::ir {

/** Options for the text printer. */
struct PrintOptions
{
    /** Maximum recursion depth rendered (-1: unbounded). */
    int maxDepth = -1;

    /** Include edge metadata (dtype/modifier/shape) per value. */
    bool showMetadata = true;
};

/** Renders @p graph as indented text, one line per node, with component
 *  subgraphs nested under their node. */
std::string printGraph(const Graph &graph, const PrintOptions &opts = {});

/** Renders the top level of @p graph as a Graphviz digraph; component
 *  subgraphs become clusters up to @p maxDepth. */
std::string toDot(const Graph &graph, int maxDepth = 2);

/** One-line statistics summary: nodes per kind, recursion depth,
 *  scalar-op total. */
std::string graphStats(const Graph &graph);

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_PRINTER_H_
