#include "srdfg/ops.h"

#include <cmath>

#include "core/error.h"

namespace polymath::ir {

ScalarOp
resolveScalarOp(Op op)
{
    switch (op.code()) {
      case OpCode::Add: return ScalarOp::Add;
      case OpCode::Sub: return ScalarOp::Sub;
      case OpCode::Mul: return ScalarOp::Mul;
      case OpCode::Div: return ScalarOp::Div;
      case OpCode::Mod: return ScalarOp::Mod;
      case OpCode::Pow: return ScalarOp::Pow;
      case OpCode::Min: return ScalarOp::Min;
      case OpCode::Max: return ScalarOp::Max;
      case OpCode::Lt: return ScalarOp::Lt;
      case OpCode::Le: return ScalarOp::Le;
      case OpCode::Gt: return ScalarOp::Gt;
      case OpCode::Ge: return ScalarOp::Ge;
      case OpCode::Eq: return ScalarOp::Eq;
      case OpCode::Ne: return ScalarOp::Ne;
      case OpCode::And: return ScalarOp::And;
      case OpCode::Or: return ScalarOp::Or;
      case OpCode::Neg: return ScalarOp::Neg;
      case OpCode::Not: return ScalarOp::Not;
      case OpCode::Identity: return ScalarOp::Identity;
      case OpCode::Select: return ScalarOp::Select;
      case OpCode::Sin: return ScalarOp::Sin;
      case OpCode::Cos: return ScalarOp::Cos;
      case OpCode::Tan: return ScalarOp::Tan;
      case OpCode::Exp: return ScalarOp::Exp;
      case OpCode::Ln: return ScalarOp::Ln;
      case OpCode::Log: return ScalarOp::Ln;
      case OpCode::Sqrt: return ScalarOp::Sqrt;
      case OpCode::Abs: return ScalarOp::Abs;
      case OpCode::Sigmoid: return ScalarOp::Sigmoid;
      case OpCode::Relu: return ScalarOp::Relu;
      case OpCode::Tanh: return ScalarOp::Tanh;
      case OpCode::Erf: return ScalarOp::Erf;
      case OpCode::Sign: return ScalarOp::Sign;
      case OpCode::Floor: return ScalarOp::Floor;
      case OpCode::Ceil: return ScalarOp::Ceil;
      case OpCode::Gauss: return ScalarOp::Gauss;
      case OpCode::Re: return ScalarOp::Re;
      case OpCode::Im: return ScalarOp::Im;
      case OpCode::Conj: return ScalarOp::Conj;
      default:
        panic("interpreter: unknown map op '" + op.str() + "'");
    }
}

double
applyScalarOp(ScalarOp op, std::span<const double> a)
{
    switch (op) {
      case ScalarOp::Add: return a[0] + a[1];
      case ScalarOp::Sub: return a[0] - a[1];
      case ScalarOp::Mul: return a[0] * a[1];
      case ScalarOp::Div: return a[0] / a[1];
      case ScalarOp::Mod: {
        const double m = std::fmod(a[0], a[1]);
        return m;
      }
      case ScalarOp::Pow: return std::pow(a[0], a[1]);
      case ScalarOp::Min: return a[0] < a[1] ? a[0] : a[1];
      case ScalarOp::Max: return a[0] > a[1] ? a[0] : a[1];
      case ScalarOp::Lt: return a[0] < a[1];
      case ScalarOp::Le: return a[0] <= a[1];
      case ScalarOp::Gt: return a[0] > a[1];
      case ScalarOp::Ge: return a[0] >= a[1];
      case ScalarOp::Eq: return a[0] == a[1];
      case ScalarOp::Ne: return a[0] != a[1];
      case ScalarOp::And: return a[0] != 0.0 && a[1] != 0.0;
      case ScalarOp::Or: return a[0] != 0.0 || a[1] != 0.0;
      case ScalarOp::Neg: return -a[0];
      case ScalarOp::Not: return a[0] == 0.0;
      case ScalarOp::Identity: return a[0];
      case ScalarOp::Select: return a[0] != 0.0 ? a[1] : a[2];
      case ScalarOp::Sin: return std::sin(a[0]);
      case ScalarOp::Cos: return std::cos(a[0]);
      case ScalarOp::Tan: return std::tan(a[0]);
      case ScalarOp::Exp: return std::exp(a[0]);
      case ScalarOp::Ln: return std::log(a[0]);
      case ScalarOp::Sqrt: return std::sqrt(a[0]);
      case ScalarOp::Abs: return std::abs(a[0]);
      case ScalarOp::Sigmoid: return 1.0 / (1.0 + std::exp(-a[0]));
      case ScalarOp::Relu: return a[0] > 0.0 ? a[0] : 0.0;
      case ScalarOp::Tanh: return std::tanh(a[0]);
      case ScalarOp::Erf: return std::erf(a[0]);
      case ScalarOp::Sign:
        return a[0] > 0.0 ? 1.0 : (a[0] < 0.0 ? -1.0 : 0.0);
      case ScalarOp::Floor: return std::floor(a[0]);
      case ScalarOp::Ceil: return std::ceil(a[0]);
      case ScalarOp::Gauss: return std::exp(-a[0] * a[0]);
      case ScalarOp::Re: return a[0];
      case ScalarOp::Im: return 0.0;
      case ScalarOp::Conj: return a[0];
    }
    panic("unhandled op");
}

std::complex<double>
applyScalarOpComplex(ScalarOp op,
                    std::span<const std::complex<double>> a)
{
    switch (op) {
      case ScalarOp::Add: return a[0] + a[1];
      case ScalarOp::Sub: return a[0] - a[1];
      case ScalarOp::Mul: return a[0] * a[1];
      case ScalarOp::Div: return a[0] / a[1];
      case ScalarOp::Neg: return -a[0];
      case ScalarOp::Identity: return a[0];
      case ScalarOp::Select: return a[0].real() != 0.0 ? a[1] : a[2];
      case ScalarOp::Exp: return std::exp(a[0]);
      case ScalarOp::Sqrt: return std::sqrt(a[0]);
      case ScalarOp::Abs: return {std::abs(a[0]), 0.0};
      case ScalarOp::Re: return {a[0].real(), 0.0};
      case ScalarOp::Im: return {a[0].imag(), 0.0};
      case ScalarOp::Conj: return std::conj(a[0]);
      case ScalarOp::Eq: return {a[0] == a[1] ? 1.0 : 0.0, 0.0};
      case ScalarOp::Ne: return {a[0] != a[1] ? 1.0 : 0.0, 0.0};
      default:
        fatal("operation not defined on complex operands");
    }
}


} // namespace polymath::ir
