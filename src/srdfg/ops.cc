#include "srdfg/ops.h"

#include <cmath>
#include <unordered_map>

#include "core/error.h"

namespace polymath::ir {

ScalarOp
resolveScalarOp(const std::string &name)
{
    static const std::unordered_map<std::string, ScalarOp> table = {
        {"add", ScalarOp::Add},         {"sub", ScalarOp::Sub},
        {"mul", ScalarOp::Mul},         {"div", ScalarOp::Div},
        {"mod", ScalarOp::Mod},         {"pow", ScalarOp::Pow},
        {"min", ScalarOp::Min},         {"max", ScalarOp::Max},
        {"lt", ScalarOp::Lt},           {"le", ScalarOp::Le},
        {"gt", ScalarOp::Gt},           {"ge", ScalarOp::Ge},
        {"eq", ScalarOp::Eq},           {"ne", ScalarOp::Ne},
        {"and", ScalarOp::And},         {"or", ScalarOp::Or},
        {"neg", ScalarOp::Neg},         {"not", ScalarOp::Not},
        {"identity", ScalarOp::Identity}, {"select", ScalarOp::Select},
        {"sin", ScalarOp::Sin},         {"cos", ScalarOp::Cos},
        {"tan", ScalarOp::Tan},         {"exp", ScalarOp::Exp},
        {"ln", ScalarOp::Ln},           {"log", ScalarOp::Ln},
        {"sqrt", ScalarOp::Sqrt},       {"abs", ScalarOp::Abs},
        {"sigmoid", ScalarOp::Sigmoid}, {"relu", ScalarOp::Relu},
        {"tanh", ScalarOp::Tanh},       {"erf", ScalarOp::Erf},
        {"sign", ScalarOp::Sign},       {"floor", ScalarOp::Floor},
        {"ceil", ScalarOp::Ceil},       {"gauss", ScalarOp::Gauss},
        {"re", ScalarOp::Re},           {"im", ScalarOp::Im},
        {"conj", ScalarOp::Conj},
    };
    auto it = table.find(name);
    if (it == table.end())
        panic("interpreter: unknown map op '" + name + "'");
    return it->second;
}

double
applyScalarOp(ScalarOp op, std::span<const double> a)
{
    switch (op) {
      case ScalarOp::Add: return a[0] + a[1];
      case ScalarOp::Sub: return a[0] - a[1];
      case ScalarOp::Mul: return a[0] * a[1];
      case ScalarOp::Div: return a[0] / a[1];
      case ScalarOp::Mod: {
        const double m = std::fmod(a[0], a[1]);
        return m;
      }
      case ScalarOp::Pow: return std::pow(a[0], a[1]);
      case ScalarOp::Min: return a[0] < a[1] ? a[0] : a[1];
      case ScalarOp::Max: return a[0] > a[1] ? a[0] : a[1];
      case ScalarOp::Lt: return a[0] < a[1];
      case ScalarOp::Le: return a[0] <= a[1];
      case ScalarOp::Gt: return a[0] > a[1];
      case ScalarOp::Ge: return a[0] >= a[1];
      case ScalarOp::Eq: return a[0] == a[1];
      case ScalarOp::Ne: return a[0] != a[1];
      case ScalarOp::And: return a[0] != 0.0 && a[1] != 0.0;
      case ScalarOp::Or: return a[0] != 0.0 || a[1] != 0.0;
      case ScalarOp::Neg: return -a[0];
      case ScalarOp::Not: return a[0] == 0.0;
      case ScalarOp::Identity: return a[0];
      case ScalarOp::Select: return a[0] != 0.0 ? a[1] : a[2];
      case ScalarOp::Sin: return std::sin(a[0]);
      case ScalarOp::Cos: return std::cos(a[0]);
      case ScalarOp::Tan: return std::tan(a[0]);
      case ScalarOp::Exp: return std::exp(a[0]);
      case ScalarOp::Ln: return std::log(a[0]);
      case ScalarOp::Sqrt: return std::sqrt(a[0]);
      case ScalarOp::Abs: return std::abs(a[0]);
      case ScalarOp::Sigmoid: return 1.0 / (1.0 + std::exp(-a[0]));
      case ScalarOp::Relu: return a[0] > 0.0 ? a[0] : 0.0;
      case ScalarOp::Tanh: return std::tanh(a[0]);
      case ScalarOp::Erf: return std::erf(a[0]);
      case ScalarOp::Sign:
        return a[0] > 0.0 ? 1.0 : (a[0] < 0.0 ? -1.0 : 0.0);
      case ScalarOp::Floor: return std::floor(a[0]);
      case ScalarOp::Ceil: return std::ceil(a[0]);
      case ScalarOp::Gauss: return std::exp(-a[0] * a[0]);
      case ScalarOp::Re: return a[0];
      case ScalarOp::Im: return 0.0;
      case ScalarOp::Conj: return a[0];
    }
    panic("unhandled op");
}

std::complex<double>
applyScalarOpComplex(ScalarOp op,
                    std::span<const std::complex<double>> a)
{
    switch (op) {
      case ScalarOp::Add: return a[0] + a[1];
      case ScalarOp::Sub: return a[0] - a[1];
      case ScalarOp::Mul: return a[0] * a[1];
      case ScalarOp::Div: return a[0] / a[1];
      case ScalarOp::Neg: return -a[0];
      case ScalarOp::Identity: return a[0];
      case ScalarOp::Select: return a[0].real() != 0.0 ? a[1] : a[2];
      case ScalarOp::Exp: return std::exp(a[0]);
      case ScalarOp::Sqrt: return std::sqrt(a[0]);
      case ScalarOp::Abs: return {std::abs(a[0]), 0.0};
      case ScalarOp::Re: return {a[0].real(), 0.0};
      case ScalarOp::Im: return {a[0].imag(), 0.0};
      case ScalarOp::Conj: return std::conj(a[0]);
      case ScalarOp::Eq: return {a[0] == a[1] ? 1.0 : 0.0, 0.0};
      case ScalarOp::Ne: return {a[0] != a[1] ? 1.0 : 0.0, 0.0};
      default:
        fatal("operation not defined on complex operands");
    }
}


} // namespace polymath::ir
