/**
 * @file
 * Property-based tests.
 *
 * 1. Expression fuzzing: random PMLang scalar expressions are generated
 *    alongside a direct C++ evaluation of the same tree; the whole stack
 *    (parse -> sema -> srDFG -> interpret) must agree, before and after
 *    the optimization pipeline.
 * 2. Parametric sweeps: FFT correctness across sizes on random signals,
 *    gather/scatter stride sweeps, reduction-guard sweeps.
 */
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/strings.h"
#include "interp/interpreter.h"
#include "passes/pass.h"
#include "pmlang/format.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "srdfg/builder.h"
#include "srdfg/serialize.h"
#include "workloads/datasets.h"
#include "workloads/programs.h"
#include "workloads/reference.h"

namespace polymath {
namespace {

/** Locale-independent PMLang literal text for @p v: snprintf("%f") honors
 *  the global C locale (comma decimals under de_DE would produce
 *  unparseable programs), to_chars never does. */
std::string
literalText(double v)
{
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    EXPECT_EQ(ec, std::errc{});
    std::string text(buf, ptr);
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos)
        text += ".0"; // keep it a float literal
    return text;
}

/** Random expression tree over three scalar inputs, emitted as PMLang
 *  text and evaluated directly while being generated. Division is kept
 *  total (denominator = |expr| + 1) and exponentials bounded. */
class ExprFuzzer
{
  public:
    explicit ExprFuzzer(uint64_t seed) : rng_(seed) {}

    /** Returns {pmlang text, expected value} for inputs a, b, c. */
    std::pair<std::string, double> generate(double a, double b, double c,
                                            int depth = 0)
    {
        const int choice =
            static_cast<int>(rng_.uniformInt(depth >= 4 ? 2 : 8));
        switch (choice) {
          case 0: { // leaf: variable
            const int which = static_cast<int>(rng_.uniformInt(3));
            const char *names[] = {"a", "b", "c"};
            const double vals[] = {a, b, c};
            return {names[which], vals[which]};
          }
          case 1: { // leaf: literal (a multiple of 0.25, exactly
                    // representable, so text == value)
            const double v =
                std::floor(rng_.uniform(-4.0, 4.0) * 4.0) / 4.0;
            return {literalText(v), v};
          }
          case 2: { // addition / subtraction / multiplication
            auto [lt, lv] = generate(a, b, c, depth + 1);
            auto [rt, rv] = generate(a, b, c, depth + 1);
            const int op = static_cast<int>(rng_.uniformInt(3));
            const char *ops[] = {" + ", " - ", "*"};
            const double vals[] = {lv + rv, lv - rv, lv * rv};
            return {"(" + lt + ops[op] + rt + ")", vals[op]};
          }
          case 3: { // total division
            auto [lt, lv] = generate(a, b, c, depth + 1);
            auto [rt, rv] = generate(a, b, c, depth + 1);
            return {"(" + lt + " / (abs(" + rt + ") + 1))",
                    lv / (std::abs(rv) + 1.0)};
          }
          case 4: { // bounded unary builtin
            auto [t, v] = generate(a, b, c, depth + 1);
            const int fn = static_cast<int>(rng_.uniformInt(6));
            const char *names[] = {"sin",     "cos",  "tanh",
                                   "sigmoid", "abs",  "gauss"};
            const double vals[] = {std::sin(v),
                                   std::cos(v),
                                   std::tanh(v),
                                   1.0 / (1.0 + std::exp(-v)),
                                   std::abs(v),
                                   std::exp(-v * v)};
            return {std::string(names[fn]) + "(" + t + ")", vals[fn]};
          }
          case 5: { // ternary on a comparison
            auto [ct, cv] = generate(a, b, c, depth + 1);
            auto [tt, tv] = generate(a, b, c, depth + 1);
            auto [et, ev] = generate(a, b, c, depth + 1);
            return {"(" + ct + " > 0 ? " + tt + " : " + et + ")",
                    cv > 0.0 ? tv : ev};
          }
          case 6: { // min/max builtins
            auto [lt, lv] = generate(a, b, c, depth + 1);
            auto [rt, rv] = generate(a, b, c, depth + 1);
            if (rng_.uniformInt(2) == 0)
                return {"min(" + lt + ", " + rt + ")", std::min(lv, rv)};
            return {"max(" + lt + ", " + rt + ")", std::max(lv, rv)};
          }
          default: { // negation
            auto [t, v] = generate(a, b, c, depth + 1);
            return {"(-" + t + ")", -v};
          }
        }
    }

  private:
    Rng rng_;
};

class ExpressionFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ExpressionFuzz, StackAgreesWithDirectEvaluation)
{
    Rng inputs(GetParam() * 7919 + 13);
    const double a = inputs.uniform(-3.0, 3.0);
    const double b = inputs.uniform(-3.0, 3.0);
    const double c = inputs.uniform(-3.0, 3.0);

    ExprFuzzer fuzzer(GetParam());
    for (int round = 0; round < 10; ++round) {
        const auto [text, expected] = fuzzer.generate(a, b, c);
        const std::string src =
            "main(input float a, input float b, input float c,"
            " output float y) { y = " +
            text + "; }";
        auto graph = ir::compileToSrdfg(src);
        const std::map<std::string, Tensor> binds = {
            {"a", Tensor::scalar(a)},
            {"b", Tensor::scalar(b)},
            {"c", Tensor::scalar(c)}};
        const auto out = interp::evaluate(*graph, binds);
        ASSERT_NEAR(out.at("y").scalarValue(), expected, 1e-9) << text;

        // The optimization pipeline must not change the value.
        auto pipeline = pass::standardPipeline();
        pipeline.runToFixpoint(*graph);
        const auto optimized = interp::evaluate(*graph, binds);
        ASSERT_NEAR(optimized.at("y").scalarValue(), expected, 1e-9)
            << "after passes: " << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionFuzz,
                         ::testing::Range<uint64_t>(1, 13));

// --- parametric sweeps -------------------------------------------------------

class StrideSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(StrideSweep, GatherScatterRoundTrip)
{
    const int64_t stride = GetParam();
    const int64_t n = 8;
    ir::BuildOptions opts;
    opts.paramConsts["s"] = stride;
    auto graph = ir::compileToSrdfg(format(
        R"(main(input float x[%lld], param int s, output float y[%lld]) {
    index i[0:%lld];
    float packed[%lld];
    packed[i] = x[i*s];
    y[i*s] = packed[i]*10;
})",
        static_cast<long long>(n * stride), static_cast<long long>(n * stride),
        static_cast<long long>(n - 1), static_cast<long long>(n)),
        opts);
    Tensor x(DType::Float, Shape{n * stride});
    for (int64_t i = 0; i < x.numel(); ++i)
        x.at(i) = static_cast<double>(i);
    const auto out = interp::evaluate(*graph, {{"x", x}});
    for (int64_t i = 0; i < n; ++i)
        EXPECT_EQ(out.at("y").at(i * stride),
                  static_cast<double>(i * stride * 10));
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

class GuardSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(GuardSweep, BandedSumMatchesDirect)
{
    const int64_t band = GetParam();
    const int64_t n = 12;
    ir::BuildOptions opts;
    opts.paramConsts["w"] = band;
    auto graph = ir::compileToSrdfg(
        "main(input float A[12][12], param int w, output float s) {"
        " index i[0:11], j[0:11];"
        " s = sum[i][j: (j - i <= w) && (i - j <= w)](A[i][j]); }",
        opts);
    Rng rng(band + 77);
    Tensor a(DType::Float, Shape{n, n});
    double expect = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            a.at({i, j}) = rng.uniform(-1, 1);
            if (j - i <= band && i - j <= band)
                expect += a.at({i, j});
        }
    }
    const auto out = interp::evaluate(*graph, {{"A", a}});
    EXPECT_NEAR(out.at("s").scalarValue(), expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bands, GuardSweep, ::testing::Values(0, 1, 3, 11));

class FftRandomSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FftRandomSweep, MatchesReferenceOnRandomSignals)
{
    const int64_t n = 128;
    auto graph = ir::compileToSrdfg(wl::fftProgram(n));
    Rng rng(GetParam());
    Tensor signal(DType::Complex, Shape{n});
    for (int64_t i = 0; i < n; ++i)
        signal.cat(i) = {rng.gaussian(), rng.gaussian()};
    const auto out = interp::evaluate(
        *graph, {{"x", signal}, {"tw", wl::twiddleTable(n)}});
    EXPECT_LT(Tensor::maxAbsDiff(out.at("y"), wl::ref::fftTensor(signal)),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftRandomSweep,
                         ::testing::Range<uint64_t>(1, 7));

class FormatterRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FormatterRoundTrip, CanonicalFormIsStableAndEquivalent)
{
    std::string src;
    const std::string which = GetParam();
    if (which == "mobile_robot")
        src = wl::mobileRobotProgram();
    else if (which == "hexacopter")
        src = wl::hexacopterProgram();
    else if (which == "bfs")
        src = wl::bfsProgram(16);
    else if (which == "kmeans")
        src = wl::kmeansProgram(10, 4, 2);
    else if (which == "fft")
        src = wl::fftProgram(32);
    else if (which == "blks")
        src = wl::blackScholesProgram(8);
    else if (which == "brainstimul")
        src = wl::brainStimulProgram();

    const auto original = lang::parse(src);
    const std::string canon = lang::formatProgram(original);
    const auto reparsed = lang::parse(canon);

    // Idempotence: formatting the canonical form is a fixpoint.
    EXPECT_EQ(lang::formatProgram(reparsed), canon) << which;

    // Semantic equivalence: analyzable, and the built srDFGs agree in
    // structure and exact op counts.
    lang::analyze(reparsed);
    auto g1 = ir::compileToSrdfg(src);
    auto g2 = ir::compileToSrdfg(canon);
    EXPECT_EQ(g1->scalarOpCount(), g2->scalarOpCount()) << which;
    EXPECT_EQ(g1->liveNodeCount(), g2->liveNodeCount()) << which;
}

INSTANTIATE_TEST_SUITE_P(Workloads, FormatterRoundTrip,
                         ::testing::Values("mobile_robot", "hexacopter",
                                           "bfs", "kmeans", "fft", "blks",
                                           "brainstimul"));

// --- serialization vs. extreme doubles and locales ---------------------------

uint64_t
bitsOf(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/** Round-trips one constant value through toJson/fromJson and returns the
 *  restored cval. */
double
roundTripCval(double cval)
{
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y) { y = x + 1.5; }");
    ir::Node *constant = nullptr;
    for (auto &node : g->nodePool()) {
        if (node.live() && node.kind == ir::NodeKind::Constant)
            constant = &node;
    }
    EXPECT_NE(constant, nullptr);
    constant->cval = cval;
    const auto restored = ir::fromJson(ir::toJson(*g), g->context);
    for (const auto &node : restored->nodePool()) {
        if (node.live() && node.kind == ir::NodeKind::Constant)
            return node.cval;
    }
    ADD_FAILURE() << "restored graph lost its constant node";
    return 0.0;
}

class ExtremeDoubleRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(ExtremeDoubleRoundTrip, ConstantsSurviveSerializationBitExact)
{
    const double value = GetParam();
    const double restored = roundTripCval(value);
    // Bit-exact, which EXPECT_EQ is not: it treats -0.0 == 0.0 and can
    // never match NaN. (NaN payloads are not preserved — any NaN encodes
    // as "nan" — so NaN round-trips to the canonical quiet NaN.)
    if (std::isnan(value))
        EXPECT_TRUE(std::isnan(restored));
    else
        EXPECT_EQ(bitsOf(restored), bitsOf(value))
            << "restored " << restored << " != " << value;
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, ExtremeDoubleRoundTrip,
    ::testing::Values(std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::quiet_NaN(),
                      1e308, -1e308,
                      std::numeric_limits<double>::max(),
                      std::numeric_limits<double>::denorm_min(),  // 5e-324
                      -std::numeric_limits<double>::denorm_min(),
                      std::numeric_limits<double>::min(),
                      std::numeric_limits<double>::epsilon(),
                      -0.0, 0.0, 1.0 / 3.0, 0.1, -123456.789e-30));

TEST(ExtremeDoubleRoundTripTest, FuzzedBitPatternsSurvive)
{
    Rng rng(2024);
    int tried = 0;
    for (int i = 0; tried < 200 && i < 1000; ++i) {
        // Random bit patterns cover the exponent range far better than
        // random uniforms; skip NaNs (payloads are canonicalized).
        const uint64_t bits = rng.next();
        double v = 0;
        std::memcpy(&v, &bits, sizeof v);
        if (std::isnan(v))
            continue;
        ++tried;
        ASSERT_EQ(bitsOf(roundTripCval(v)), bits) << "value " << v;
    }
    EXPECT_GE(tried, 100);
}

/** Pins the global C locale to a comma-decimal locale for one scope.
 *  Skips silently (pinned() == false) when none is installed. */
class CommaLocaleGuard
{
  public:
    CommaLocaleGuard()
    {
        const char *current = std::setlocale(LC_ALL, nullptr);
        saved_ = current ? current : "C";
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR.utf8", "fr_FR", "it_IT.UTF-8", "es_ES.UTF-8"}) {
            if (std::setlocale(LC_ALL, name)) {
                pinned_ = name;
                break;
            }
        }
    }
    ~CommaLocaleGuard() { std::setlocale(LC_ALL, saved_.c_str()); }

    const char *pinned() const { return pinned_; }

  private:
    std::string saved_;
    const char *pinned_ = nullptr;
};

TEST(LocaleIndependence, ParseAndSerializeUnderCommaDecimalLocale)
{
    const CommaLocaleGuard guard;
    if (!guard.pinned())
        GTEST_SKIP() << "no comma-decimal locale installed";

    char probe[32];
    std::snprintf(probe, sizeof probe, "%.1f", 1.5);
    EXPECT_STREQ(probe, "1,5")
        << "locale " << guard.pinned() << " does not use comma decimals";

    // PMLang float literals parse with from_chars, immune to the locale.
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y) { y = x * 1.5; }");
    const auto out = interp::evaluate(*g, {{"x", Tensor::scalar(2.0)}});
    EXPECT_EQ(out.at("y").scalarValue(), 3.0);

    // JSON stays dot-decimal on the way out and parses on the way in.
    const auto json = ir::toJson(*g);
    EXPECT_NE(json.find("1.5"), std::string::npos);
    EXPECT_EQ(json.find("1,5"), std::string::npos);
    const auto restored = ir::fromJson(json, g->context);
    const auto out2 =
        interp::evaluate(*restored, {{"x", Tensor::scalar(2.0)}});
    EXPECT_EQ(out2.at("y").scalarValue(), 3.0);

    // Fractional round-trip values survive a comma-locale process too.
    EXPECT_EQ(bitsOf(roundTripCval(0.1)), bitsOf(0.1));
    EXPECT_EQ(bitsOf(roundTripCval(-1e308)), bitsOf(-1e308));
}

TEST(LocaleIndependence, FuzzedExpressionsEvaluateUnderCommaDecimalLocale)
{
    const CommaLocaleGuard guard;
    if (!guard.pinned())
        GTEST_SKIP() << "no comma-decimal locale installed";

    ExprFuzzer fuzzer(7);
    for (int round = 0; round < 5; ++round) {
        const auto [text, expected] = fuzzer.generate(0.5, -1.25, 2.0);
        const std::string src =
            "main(input float a, input float b, input float c,"
            " output float y) { y = " +
            text + "; }";
        auto graph = ir::compileToSrdfg(src);
        const auto out = interp::evaluate(
            *graph, {{"a", Tensor::scalar(0.5)},
                     {"b", Tensor::scalar(-1.25)},
                     {"c", Tensor::scalar(2.0)}});
        ASSERT_NEAR(out.at("y").scalarValue(), expected, 1e-9) << text;
    }
}

TEST(Formatter, FuzzedExpressionsRoundTrip)
{
    ExprFuzzer fuzzer(99);
    for (int round = 0; round < 30; ++round) {
        const auto [text, value] = fuzzer.generate(1.0, 2.0, 3.0);
        (void)value;
        const std::string src =
            "main(input float a, input float b, input float c,"
            " output float y) { y = " +
            text + "; }";
        const auto program = lang::parse(src);
        const std::string canon = lang::formatProgram(program);
        EXPECT_EQ(lang::formatProgram(lang::parse(canon)), canon) << text;
    }
}

} // namespace
} // namespace polymath
