/**
 * @file
 * Autotuner tests: Table VI factory pins (the calibration surface the
 * design spaces pivot around), Pareto-front correctness on hand-built
 * points, config-space indexing/neighborhoods, degenerate-config
 * rejection, seeded search determinism across jobs counts (byte-equal
 * polymath-dse/1 artifacts at -j1 vs -j4), and artifact round-trip
 * through the bench_compare flattening.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/error.h"
#include "dse/artifact.h"
#include "dse/config_space.h"
#include "dse/dse.h"
#include "dse/pareto.h"
#include "lower/accel_spec.h"
#include "lower/compile.h"
#include "report/artifact.h"
#include "targets/common/backend.h"
#include "targets/common/machine_config.h"

namespace polymath::dse {
namespace {

// ---------------------------------------------------------------------------
// Table VI factory pins. The ten factories are the calibration surface
// of every cost model *and* the base points of every design space; a
// drive-by edit here shifts all paper figures at once.
// ---------------------------------------------------------------------------

TEST(MachineConfigs, TableVIFactoriesPinned)
{
    const auto xeon = target::xeonConfig();
    EXPECT_DOUBLE_EQ(xeon.freqGhz, 3.7);
    EXPECT_DOUBLE_EQ(xeon.watts, 80.0);
    EXPECT_EQ(xeon.computeUnits, 6);
    EXPECT_DOUBLE_EQ(xeon.flopsPerUnitCycle, 16.0);
    EXPECT_DOUBLE_EQ(xeon.dramGBs, 41.6);

    const auto titan = target::titanXpConfig();
    EXPECT_DOUBLE_EQ(titan.freqGhz, 1.58);
    EXPECT_DOUBLE_EQ(titan.watts, 250.0);
    EXPECT_DOUBLE_EQ(titan.idleWatts, 15.0);
    EXPECT_EQ(titan.computeUnits, 3840);
    EXPECT_DOUBLE_EQ(titan.flopsPerUnitCycle, 2.0);
    EXPECT_DOUBLE_EQ(titan.dramGBs, 547.0);
    EXPECT_DOUBLE_EQ(titan.launchOverheadUs, 6.0);

    const auto jetson = target::jetsonConfig();
    EXPECT_DOUBLE_EQ(jetson.freqGhz, 1.3);
    EXPECT_DOUBLE_EQ(jetson.watts, 30.0);
    EXPECT_DOUBLE_EQ(jetson.idleWatts, 5.0);
    EXPECT_EQ(jetson.computeUnits, 512);
    EXPECT_DOUBLE_EQ(jetson.dramGBs, 137.0);
    EXPECT_DOUBLE_EQ(jetson.launchOverheadUs, 9.0);

    const auto robox = target::roboxConfig();
    EXPECT_DOUBLE_EQ(robox.freqGhz, 1.0);
    EXPECT_DOUBLE_EQ(robox.watts, 3.4);
    EXPECT_EQ(robox.computeUnits, 256);
    EXPECT_DOUBLE_EQ(robox.dramGBs, 12.8);
    EXPECT_EQ(robox.onChipBytes, 512 * 1024);
    EXPECT_DOUBLE_EQ(robox.launchOverheadUs, 0.2);

    const auto graph = target::graphicionadoConfig();
    EXPECT_DOUBLE_EQ(graph.freqGhz, 1.0);
    EXPECT_DOUBLE_EQ(graph.watts, 7.0);
    EXPECT_EQ(graph.computeUnits, 8);
    EXPECT_DOUBLE_EQ(graph.dramGBs, 68.0);
    EXPECT_EQ(graph.onChipBytes, 64ll * 1024 * 1024);
    EXPECT_DOUBLE_EQ(graph.launchOverheadUs, 1.0);
    EXPECT_EQ(graph.banksPerPipe, 32);

    const auto tabla = target::tablaConfig();
    EXPECT_DOUBLE_EQ(tabla.freqGhz, 0.15);
    EXPECT_DOUBLE_EQ(tabla.watts, 18.0);
    EXPECT_EQ(tabla.computeUnits, 2048);
    EXPECT_DOUBLE_EQ(tabla.dramGBs, 19.2);
    EXPECT_EQ(tabla.onChipBytes, 64ll * 1024 * 1024);
    EXPECT_DOUBLE_EQ(tabla.launchOverheadUs, 2.0);
    EXPECT_EQ(tabla.busWordsPerCycle, 64);

    const auto deco = target::decoConfig();
    EXPECT_DOUBLE_EQ(deco.freqGhz, 0.15);
    EXPECT_DOUBLE_EQ(deco.watts, 16.0);
    EXPECT_EQ(deco.computeUnits, 1024);
    EXPECT_DOUBLE_EQ(deco.dramGBs, 19.2);
    EXPECT_EQ(deco.onChipBytes, 8ll * 1024 * 1024);
    EXPECT_DOUBLE_EQ(deco.launchOverheadUs, 2.0);

    const auto vta = target::vtaConfig();
    EXPECT_DOUBLE_EQ(vta.freqGhz, 0.15);
    EXPECT_DOUBLE_EQ(vta.watts, 3.0);
    EXPECT_EQ(vta.computeUnits, 256);
    EXPECT_DOUBLE_EQ(vta.flopsPerUnitCycle, 2.0);
    EXPECT_DOUBLE_EQ(vta.dramGBs, 19.2);
    EXPECT_EQ(vta.onChipBytes, 1ll * 1024 * 1024);
    EXPECT_DOUBLE_EQ(vta.launchOverheadUs, 8.0);

    const auto hs = target::hyperstreamsConfig();
    EXPECT_DOUBLE_EQ(hs.freqGhz, 0.15);
    EXPECT_DOUBLE_EQ(hs.watts, 14.0);
    EXPECT_EQ(hs.computeUnits, 512);
    EXPECT_DOUBLE_EQ(hs.dramGBs, 19.2);
    EXPECT_EQ(hs.onChipBytes, 4ll * 1024 * 1024);
    EXPECT_DOUBLE_EQ(hs.launchOverheadUs, 2.0);

    const auto soc = target::socConfig();
    EXPECT_DOUBLE_EQ(soc.dmaGBs, 16.0);
    EXPECT_DOUBLE_EQ(soc.perTransferUs, 2.0);
    EXPECT_DOUBLE_EQ(soc.hostWatts, 1.5);
    EXPECT_DOUBLE_EQ(soc.dramPjPerByte, 20.0);
}

TEST(MachineConfigs, ValidateRejectsDegenerateConfigs)
{
    auto broken = [](auto mutate) {
        target::MachineConfig m = target::tablaConfig();
        mutate(m);
        return m;
    };
    EXPECT_THROW(
        broken([](auto &m) { m.computeUnits = 0; }).validate(),
        UserError);
    EXPECT_THROW(
        broken([](auto &m) { m.computeUnits = -4; }).validate(),
        UserError);
    EXPECT_THROW(broken([](auto &m) { m.freqGhz = 0.0; }).validate(),
                 UserError);
    EXPECT_THROW(broken([](auto &m) { m.freqGhz = -1.0; }).validate(),
                 UserError);
    EXPECT_THROW(
        broken([](auto &m) { m.freqGhz = 1.0 / 0.0; }).validate(),
        UserError);
    EXPECT_THROW(broken([](auto &m) { m.watts = 0.0; }).validate(),
                 UserError);
    EXPECT_THROW(broken([](auto &m) { m.dramGBs = 0.0; }).validate(),
                 UserError);
    EXPECT_THROW(
        broken([](auto &m) { m.busWordsPerCycle = 0; }).validate(),
        UserError);
    EXPECT_THROW(broken([](auto &m) { m.banksPerPipe = 0; }).validate(),
                 UserError);
    EXPECT_THROW(broken([](auto &m) { m.idleWatts = -1.0; }).validate(),
                 UserError);
    EXPECT_NO_THROW(target::tablaConfig().validate());

    // Ingest point: backend construction validates, so a degenerate
    // config cannot produce NaN seconds later.
    target::MachineConfig bad = target::roboxConfig();
    bad.computeUnits = 0;
    EXPECT_THROW(target::makeBackend("RoboX", bad), UserError);
}

TEST(MachineConfigs, CyclesToSecondsGuardsFrequency)
{
    EXPECT_DOUBLE_EQ(target::cyclesToSeconds(1e9, 1.0), 1.0);
    EXPECT_THROW(target::cyclesToSeconds(100.0, 0.0), UserError);
    EXPECT_THROW(target::cyclesToSeconds(100.0, -2.0), UserError);
}

// ---------------------------------------------------------------------------
// Pareto front on hand-built points.
// ---------------------------------------------------------------------------

TEST(Pareto, DominanceIsStrictSomewhere)
{
    EXPECT_TRUE(dominates({1.0, 5.0}, {2.0, 4.0}));  // better both
    EXPECT_TRUE(dominates({1.0, 5.0}, {1.0, 4.0}));  // tie seconds
    EXPECT_TRUE(dominates({1.0, 5.0}, {2.0, 5.0}));  // tie ppw
    EXPECT_FALSE(dominates({1.0, 5.0}, {1.0, 5.0})); // exact tie
    EXPECT_FALSE(dominates({1.0, 4.0}, {2.0, 5.0})); // trade-off
    EXPECT_FALSE(dominates({2.0, 4.0}, {1.0, 5.0}));
}

TEST(Pareto, FrontExcludesDominatedAndKeepsTies)
{
    // (seconds, perfPerWatt): 0 and 3 trade off, 1 is dominated by 0,
    // 2 is an exact tie with 0, 4 is dominated by everything.
    const std::vector<Objective> points = {
        {1.0, 10.0}, {2.0, 9.0}, {1.0, 10.0}, {0.5, 6.0}, {3.0, 1.0},
    };
    const auto front = paretoFront(points);
    EXPECT_EQ(front, (std::vector<size_t>{0, 2, 3}));
}

TEST(Pareto, SinglePointAndEmptyInput)
{
    EXPECT_TRUE(paretoFront({}).empty());
    EXPECT_EQ(paretoFront({{1.0, 1.0}}), (std::vector<size_t>{0}));
}

// ---------------------------------------------------------------------------
// Config spaces.
// ---------------------------------------------------------------------------

TEST(ConfigSpace, BasePointIsTheFactoryConfig)
{
    for (const char *backend :
         {"RoboX", "Graphicionado", "TABLA", "DECO", "TVM-VTA",
          "HyperStreams"})
    {
        SCOPED_TRACE(backend);
        EXPECT_TRUE(ConfigSpace::searchable(backend));
        for (const auto kind :
             {ConfigSpace::Kind::Small, ConfigSpace::Kind::Full})
        {
            const auto space = ConfigSpace::forBackend(backend, kind);
            ASSERT_GT(space.size(), 1);
            const auto base = space.machineAt(space.baseIndex());
            // Byte-identical to the shipped Table VI machine: every
            // axis scale is exactly 1.0 at the base point.
            EXPECT_EQ(base.signature(), space.base().signature());
        }
    }
    EXPECT_FALSE(ConfigSpace::searchable("Xeon E-2176G"));
    EXPECT_THROW(
        ConfigSpace::forBackend("NoSuchAccel", ConfigSpace::Kind::Small),
        UserError);
    EXPECT_THROW(ConfigSpace::kindFromString("medium"), UserError);
}

TEST(ConfigSpace, IndexingRoundTripsAndValidates)
{
    const auto space =
        ConfigSpace::forBackend("TABLA", ConfigSpace::Kind::Full);
    std::set<std::string> labels;
    for (int64_t i = 0; i < space.size(); ++i) {
        EXPECT_NO_THROW(space.machineAt(i).validate());
        labels.insert(space.label(i));
        for (const int64_t n : space.neighbors(i)) {
            EXPECT_GE(n, 0);
            EXPECT_LT(n, space.size());
            EXPECT_NE(n, i);
        }
    }
    // Labels are unique: they name distinct scale tuples.
    EXPECT_EQ(static_cast<int64_t>(labels.size()), space.size());
    EXPECT_THROW(space.machineAt(-1), UserError);
    EXPECT_THROW(space.machineAt(space.size()), UserError);
}

TEST(ConfigSpace, DerivedPowerMovesWithTheAxes)
{
    // Along any single axis (the other coordinates equal), more compute
    // units or a higher clock must cost more watts — power is derived
    // from the axes, never a free variable.
    const auto space =
        ConfigSpace::forBackend("TABLA", ConfigSpace::Kind::Full);
    std::vector<target::MachineConfig> machines;
    for (int64_t i = 0; i < space.size(); ++i)
        machines.push_back(space.machineAt(i));
    for (const auto &a : machines) {
        for (const auto &b : machines) {
            const bool same_rest = a.freqGhz == b.freqGhz &&
                                   a.dramGBs == b.dramGBs &&
                                   a.busWordsPerCycle ==
                                       b.busWordsPerCycle;
            if (same_rest && a.computeUnits > b.computeUnits)
                EXPECT_GT(a.watts, b.watts);
            if (a.computeUnits == b.computeUnits &&
                a.dramGBs == b.dramGBs &&
                a.busWordsPerCycle == b.busWordsPerCycle &&
                a.freqGhz > b.freqGhz)
            {
                EXPECT_GT(a.watts, b.watts);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Search determinism + artifacts, on a synthetic workload (no compile).
// ---------------------------------------------------------------------------

lower::Partition
syntheticPartition(const std::string &accel)
{
    lower::Partition p;
    p.accel = accel;
    for (int64_t i = 0; i < 3; ++i) {
        lower::IrFragment f;
        f.opcode = "kernel" + std::to_string(i);
        f.flops = 50'000 + 10'000 * i;
        lower::TensorArg in;
        in.name = "t" + std::to_string(i);
        in.shape = Shape{256};
        lower::TensorArg out;
        out.name = "t" + std::to_string(i + 1);
        out.shape = Shape{256};
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    lower::TensorArg stream;
    stream.name = "x";
    stream.shape = Shape{1 << 16};
    stream.kind = ir::EdgeKind::Input;
    p.loads.push_back(stream);
    return p;
}

DseArtifact
artifactFor(const WorkloadStudy &study, const SearchOptions &opts)
{
    DseArtifact artifact;
    artifact.name = "test";
    artifact.git = "test-git";
    artifact.config = "test-config";
    artifact.space = ConfigSpace::toString(opts.space);
    artifact.search = SearchOptions::toString(opts.driver);
    artifact.seed = opts.seed;
    artifact.samples = opts.samples;
    artifact.rounds = opts.rounds;
    artifact.workloads.push_back(toStudy(study));
    return artifact;
}

TEST(Explore, GridCoversTheSpaceAndFindsTheBaseline)
{
    const auto partition = syntheticPartition("TABLA");
    target::WorkloadProfile profile;
    profile.invocations = 100;
    SearchOptions opts;
    opts.space = ConfigSpace::Kind::Small;
    opts.driver = SearchOptions::Driver::Grid;

    const auto study =
        explore("synthetic", "TABLA", {&partition}, profile, opts);
    EXPECT_EQ(study.evaluated(), study.spaceSize);
    EXPECT_FALSE(study.front.empty());
    // Points come back ascending by index and the baseline is the
    // factory config.
    for (size_t i = 1; i < study.points.size(); ++i)
        EXPECT_LT(study.points[i - 1].index, study.points[i].index);
    const auto space =
        ConfigSpace::forBackend("TABLA", ConfigSpace::Kind::Small);
    EXPECT_EQ(study.baseline().index, space.baseIndex());
    // Front points are mutually non-dominating.
    for (const size_t a : study.front) {
        for (const size_t b : study.front) {
            EXPECT_FALSE(dominates({study.points[a].seconds,
                                    study.points[a].perfPerWatt},
                                   {study.points[b].seconds,
                                    study.points[b].perfPerWatt}));
        }
    }
    // Phase attribution is populated (profiling is forced on).
    EXPECT_FALSE(study.baseline().dominantPhase.empty());
    EXPECT_FALSE(study.baseline().topCost.empty());
}

TEST(Explore, SameSeedIsByteIdenticalAtAnyJobsCount)
{
    const auto partition = syntheticPartition("Graphicionado");
    target::WorkloadProfile profile;
    profile.invocations = 50;
    profile.vertices = 1000;
    profile.edges = 5000;

    SearchOptions opts;
    opts.space = ConfigSpace::Kind::Full;
    opts.driver = SearchOptions::Driver::Random;
    opts.samples = 12;
    opts.rounds = 3;
    opts.seed = 0xfeedbeef;

    SearchOptions serial = opts;
    serial.jobs = 1;
    SearchOptions parallel = opts;
    parallel.jobs = 4;

    const auto a = explore("synthetic", "Graphicionado", {&partition},
                           profile, serial);
    const auto b = explore("synthetic", "Graphicionado", {&partition},
                           profile, parallel);
    EXPECT_EQ(artifactFor(a, serial).json(),
              artifactFor(b, parallel).json());
    EXPECT_EQ(frontTable(a), frontTable(b));

    // A different seed explores a different subset (the space is far
    // larger than the budget, so a collision would be a seeding bug).
    SearchOptions reseeded = serial;
    reseeded.seed = 0x5eed;
    const auto c = explore("synthetic", "Graphicionado", {&partition},
                           profile, reseeded);
    std::vector<int64_t> visited_a, visited_c;
    for (const auto &p : a.points)
        visited_a.push_back(p.index);
    for (const auto &p : c.points)
        visited_c.push_back(p.index);
    EXPECT_NE(visited_a, visited_c);
}

TEST(Explore, RejectsEmptyPartitionsAndUnknownBackends)
{
    target::WorkloadProfile profile;
    SearchOptions opts;
    EXPECT_THROW(explore("w", "TABLA", {}, profile, opts), UserError);
    const auto partition = syntheticPartition("Xeon E-2176G");
    EXPECT_THROW(
        explore("w", "Xeon E-2176G", {&partition}, profile, opts),
        UserError);
}

TEST(Artifact, RoundTripsAndFlattensForBenchCompare)
{
    const auto partition = syntheticPartition("TABLA");
    target::WorkloadProfile profile;
    profile.invocations = 10;
    SearchOptions opts;
    opts.space = ConfigSpace::Kind::Small;
    opts.driver = SearchOptions::Driver::Grid;
    const auto study =
        explore("synthetic", "TABLA", {&partition}, profile, opts);

    const DseArtifact artifact = artifactFor(study, opts);
    const std::string text = artifact.json();
    const DseArtifact parsed = DseArtifact::fromJson(text);
    EXPECT_EQ(parsed.json(), text);
    EXPECT_EQ(parsed.seed, artifact.seed);
    EXPECT_EQ(parsed.workloads.size(), 1u);
    EXPECT_EQ(parsed.workloads[0].front.size(), study.front.size());

    // The bench_compare path: flatten both sides and diff at zero
    // tolerance — identical artifacts must gate clean.
    const auto flat = artifact.toBenchArtifact();
    const auto reflat = parsed.toBenchArtifact();
    EXPECT_TRUE(report::compareArtifacts(flat, reflat).ok());
    EXPECT_FALSE(flat.metrics.empty());

    // Foreign schemas are rejected, not misread.
    EXPECT_THROW(DseArtifact::fromJson(
                     "{\"schema\":\"polymath-bench/1\"}"),
                 UserError);
}

} // namespace
} // namespace polymath::dse
