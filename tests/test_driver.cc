/**
 * @file
 * Suite-driver tests: thread-pool parallel map semantics, the
 * content-addressed compile cache (memoization, single-flight coalescing,
 * failure eviction), and the two properties the bench harness depends on:
 * -j1 and -jN runs produce byte-identical reports, and a repeated
 * workload hits the cache at >= 50%.
 */
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <gtest/gtest.h>
#include <thread>

#include "core/strings.h"
#include "core/thread_pool.h"
#include "driver.h"
#include "lower/compile_cache.h"
#include "soc/soc.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

// --- thread pool / parallel map ---------------------------------------------

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    for (const int jobs : {1, 2, 8}) {
        const auto out =
            core::parallelMap(jobs, 100, [](int64_t i) { return i * i; });
        ASSERT_EQ(out.size(), 100u) << "jobs=" << jobs;
        for (int64_t i = 0; i < 100; ++i)
            EXPECT_EQ(out[static_cast<size_t>(i)], i * i)
                << "jobs=" << jobs;
    }
}

TEST(ThreadPool, ParallelMapRunsEmptyAndSingleton)
{
    EXPECT_TRUE(
        core::parallelMap(4, 0, [](int64_t i) { return i; }).empty());
    const auto one = core::parallelMap(4, 1, [](int64_t) { return 7; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7);
}

TEST(ThreadPool, ParallelMapPropagatesExceptions)
{
    EXPECT_THROW(core::parallelMap(4, 16,
                                   [](int64_t i) {
                                       if (i == 11)
                                           fatal("boom");
                                       return i;
                                   }),
                 UserError);
}

TEST(ThreadPool, ResolveJobsSemantics)
{
    EXPECT_GE(core::resolveJobs(0), 1);  // 0 = all hardware threads
    EXPECT_GE(core::resolveJobs(-3), 1);
    EXPECT_EQ(core::resolveJobs(4), 4);  // oversubscription allowed
    EXPECT_EQ(core::resolveJobs(1 << 20), core::kMaxJobs);
}

TEST(ThreadPool, DefaultJobsReadsEnvironment)
{
    const char *saved = std::getenv("POLYMATH_JOBS");
    const std::string restore = saved ? saved : "";

    ::setenv("POLYMATH_JOBS", "7", 1);
    EXPECT_EQ(core::defaultJobs(), 7);
    ::setenv("POLYMATH_JOBS", "0", 1); // 0 = all hardware threads
    EXPECT_GE(core::defaultJobs(), 1);
    ::setenv("POLYMATH_JOBS", "not-a-number", 1); // malformed => serial
    EXPECT_EQ(core::defaultJobs(), 1);
    ::unsetenv("POLYMATH_JOBS");
    EXPECT_EQ(core::defaultJobs(), 1);

    if (saved)
        ::setenv("POLYMATH_JOBS", restore.c_str(), 1);
}

TEST(Driver, ParsesJobsFlags)
{
    const char *saved = std::getenv("POLYMATH_JOBS");
    ::unsetenv("POLYMATH_JOBS");

    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "bench");
        return bench::parseDriverArgs(
            static_cast<int>(argv.size()),
            const_cast<char **>(argv.data()));
    };
    EXPECT_EQ(parse({}).jobs, 1);
    EXPECT_EQ(parse({"-j", "4"}).jobs, 4);
    EXPECT_EQ(parse({"-j8"}).jobs, 8);
    EXPECT_EQ(parse({"--jobs", "3"}).jobs, 3);
    EXPECT_EQ(parse({"--jobs=5"}).jobs, 5);
    EXPECT_GE(parse({"-j0"}).jobs, 1); // 0 = all hardware threads
    EXPECT_FALSE(parse({"-j2"}).stats);
    EXPECT_TRUE(parse({"--driver-stats"}).stats);
    EXPECT_THROW(parse({"-j", "x"}), UserError);
    EXPECT_THROW(parse({"--jobs=-2"}), UserError);

    if (saved)
        ::setenv("POLYMATH_JOBS", saved, 1);
}

// --- compile cache -----------------------------------------------------------

TEST(CompileCache, KeyCapturesAllCompilationInputs)
{
    const auto registry = target::standardRegistry();
    const std::string src =
        "main(input float x, output float y) { y = x + 1; }";
    const ir::BuildOptions opts;

    const auto base =
        lower::compileCacheKey(src, opts, lang::Domain::None, registry);
    EXPECT_EQ(base,
              lower::compileCacheKey(src, opts, lang::Domain::None,
                                     registry));

    ir::BuildOptions other_entry = opts;
    other_entry.entry = "other";
    ir::BuildOptions other_params = opts;
    other_params.paramConsts["n"] = 4;
    const std::string keys[] = {
        lower::compileCacheKey(src + " ", opts, lang::Domain::None,
                               registry),
        lower::compileCacheKey(src, other_entry, lang::Domain::None,
                               registry),
        lower::compileCacheKey(src, other_params, lang::Domain::None,
                               registry),
        lower::compileCacheKey(src, opts, lang::Domain::DSP, registry),
    };
    for (const auto &key : keys) {
        EXPECT_NE(key, base);
        EXPECT_NE(lower::contentHash(key), lower::contentHash(base));
    }
}

TEST(CompileCache, SecondCompileReturnsMemoizedArtifact)
{
    lower::CompileCache cache;
    const auto registry = target::standardRegistry();
    const auto &bench = wl::tableIII().front();

    const auto first = wl::compileBenchmarkCached(
        bench.source, bench.buildOpts, registry, bench.domain, cache);
    const auto second = wl::compileBenchmarkCached(
        bench.source, bench.buildOpts, registry, bench.domain, cache);

    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get()); // the same artifact, not a copy
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GE(cache.hitRate(), 0.5);
}

TEST(CompileCache, RepeatedSuiteHitsAtLeastHalf)
{
    // The acceptance bar for the driver: running the same workload suite
    // twice must serve >= 50% of compilations from the cache.
    lower::CompileCache cache;
    const auto registry = target::standardRegistry();
    for (int round = 0; round < 2; ++round) {
        for (const auto &bench : wl::tableIII()) {
            ASSERT_NE(wl::compileBenchmarkCached(bench.source,
                                                 bench.buildOpts, registry,
                                                 bench.domain, cache),
                      nullptr);
        }
    }
    // <= rather than ==: workloads sharing (source, opts, domain) — e.g.
    // two configs of one kernel — legitimately share one cache entry.
    EXPECT_LE(cache.size(), wl::tableIII().size());
    EXPECT_GE(cache.size(), wl::tableIII().size() / 2);
    EXPECT_GE(cache.hitRate(), 0.5);
}

TEST(CompileCache, ConcurrentRequestsCoalesce)
{
    lower::CompileCache cache;
    std::atomic<int> compiles{0};
    const auto results = core::parallelMap(8, 16, [&](int64_t) {
        return cache.getOrCompile("the-key", [&] {
            compiles.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return lower::CompiledProgram{};
        });
    });
    EXPECT_EQ(compiles.load(), 1); // single-flight
    for (const auto &r : results)
        EXPECT_EQ(r.get(), results.front().get());
    EXPECT_EQ(cache.hits() + cache.misses(), 16);
    EXPECT_EQ(cache.misses(), 1);
}

TEST(CompileCache, FailedCompileIsEvictedAndRetryable)
{
    lower::CompileCache cache;
    const auto fail = [&]() -> lower::CompiledProgram { fatal("bad"); };
    EXPECT_THROW(cache.getOrCompile("k", fail), UserError);
    EXPECT_THROW(cache.getOrCompile("k", fail), UserError); // re-runs
    const auto ok =
        cache.getOrCompile("k", [] { return lower::CompiledProgram{}; });
    EXPECT_NE(ok, nullptr);
    EXPECT_EQ(cache.size(), 1u);
}

// --- -j1 vs -jN determinism --------------------------------------------------

/** Compiles + simulates the Table III suite with @p jobs workers through
 *  @p cache and renders a high-precision textual report. */
std::string
suiteReport(int jobs, lower::CompileCache &cache)
{
    const auto registry = target::standardRegistry();
    const auto &table = wl::tableIII();
    const soc::SocRuntime runtime;
    const auto rows = core::parallelMap(
        jobs, static_cast<int64_t>(table.size()), [&](int64_t i) {
            const auto &bench = table[static_cast<size_t>(i)];
            const auto program = wl::compileBenchmarkCached(
                bench.source, bench.buildOpts, registry, bench.domain,
                cache);
            const auto result = runtime.execute(*program, bench.profile);
            return format("%s|%.17g|%.17g|%s", bench.id.c_str(),
                          result.total.seconds, result.total.joules,
                          result.total.str().c_str());
        });
    std::string report;
    for (const auto &row : rows)
        report += row + "\n";
    return report;
}

TEST(DriverDeterminism, SerialAndParallelReportsAreByteIdentical)
{
    lower::CompileCache serial_cache;
    lower::CompileCache parallel_cache;
    const auto serial = suiteReport(1, serial_cache);
    const auto parallel = suiteReport(4, parallel_cache);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Fresh caches on both sides: every workload compiled exactly once.
    EXPECT_EQ(serial_cache.size(), parallel_cache.size());
    EXPECT_EQ(parallel_cache.misses(), serial_cache.misses());
}

TEST(DriverDeterminism, DriverMapTableIIIMatchesAcrossJobs)
{
    const auto registry = target::standardRegistry();
    const auto render = [&](int jobs) {
        bench::DriverOptions options;
        options.jobs = jobs;
        const bench::Driver driver(options);
        const auto rows = driver.mapTableIII(
            registry, [](const wl::Benchmark &bench,
                         const lower::CompiledProgram &program) {
                std::string ops;
                for (const auto &partition : program.partitions)
                    ops += partition.accel + ";";
                return bench.id + "|" + ops;
            });
        std::string report;
        for (const auto &row : rows)
            report += row + "\n";
        return report;
    };
    // The second run is served from the process-global cache; memoized
    // artifacts must render identically to freshly compiled ones.
    EXPECT_EQ(render(1), render(4));
}

} // namespace
} // namespace polymath
