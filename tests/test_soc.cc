/**
 * @file
 * SoC runtime tests: partition offload selection, host fallback with
 * per-kernel efficiencies, DMA/host accounting, glue residual, and the
 * Amdahl behavior the Fig. 10 sweeps rely on.
 */
#include <gtest/gtest.h>

#include "soc/soc.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

using soc::SocRuntime;

class SocFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto &app = wl::tableIV().front(); // BrainStimul
        registry_ = target::standardRegistry();
        compiled_ = wl::compileBenchmark(app.source, app.buildOpts,
                                         registry_, lang::Domain::None);
        profile_ = app.profile;
        for (const auto &kernel : app.kernels)
            hostEff_[kernel.accel] = kernel.cpuEff;
    }

    lower::AcceleratorRegistry registry_;
    lower::CompiledProgram compiled_;
    target::WorkloadProfile profile_;
    std::map<std::string, double> hostEff_;
    SocRuntime runtime_;
};

TEST_F(SocFixture, AllAcceleratedBeatsCpuOnly)
{
    const auto cpu =
        runtime_.execute(compiled_, profile_, {"<none>"}, hostEff_);
    const auto accel = runtime_.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_GT(cpu.total.seconds, accel.total.seconds);
    EXPECT_GT(cpu.total.joules, accel.total.joules);
}

TEST_F(SocFixture, PartialAccelerationIsBetweenExtremes)
{
    const auto cpu =
        runtime_.execute(compiled_, profile_, {"<none>"}, hostEff_);
    const auto all = runtime_.execute(compiled_, profile_, {}, hostEff_);
    const auto fft_only =
        runtime_.execute(compiled_, profile_, {"DECO"}, hostEff_);
    EXPECT_LE(fft_only.total.seconds, cpu.total.seconds * 1.001);
    EXPECT_GE(fft_only.total.seconds, all.total.seconds * 0.999);
}

TEST_F(SocFixture, AmdahlMonotonicInAcceleratedSet)
{
    const std::set<std::string> sets[] = {
        {"DECO"}, {"DECO", "TABLA"}, {"DECO", "TABLA", "RoboX"}};
    double prev = 1e18;
    for (const auto &s : sets) {
        const auto r = runtime_.execute(compiled_, profile_, s, hostEff_);
        EXPECT_LE(r.total.seconds, prev * 1.001);
        prev = r.total.seconds;
    }
}

TEST_F(SocFixture, TransfersOnlyChargedWhenOffloaded)
{
    const auto cpu =
        runtime_.execute(compiled_, profile_, {"<none>"}, hostEff_);
    EXPECT_EQ(cpu.transferSeconds, 0.0);
    const auto all = runtime_.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_GT(all.transferSeconds, 0.0);
    EXPECT_GT(all.communicationFraction(), 0.0);
    EXPECT_LT(all.communicationFraction(), 0.5);
}

TEST_F(SocFixture, GlueResidualBoundsSpeedup)
{
    // With glue, even infinite acceleration cannot beat the glue floor.
    const auto cpu =
        runtime_.execute(compiled_, profile_, {"<none>"}, hostEff_);
    const auto all = runtime_.execute(compiled_, profile_, {}, hostEff_);
    const double glue = profile_.hostGlueSeconds *
                        static_cast<double>(profile_.invocations);
    EXPECT_GT(glue, 0.0);
    EXPECT_GE(all.total.seconds, glue);
    EXPECT_LT(cpu.total.seconds / all.total.seconds,
              cpu.total.seconds / glue);
}

TEST_F(SocFixture, PerPartitionReportsSumBelowTotal)
{
    const auto all = runtime_.execute(compiled_, profile_, {}, hostEff_);
    ASSERT_EQ(all.partitions.size(), compiled_.partitions.size());
    double sum = 0.0;
    for (const auto &p : all.partitions)
        sum += p.seconds;
    EXPECT_LE(sum, all.total.seconds + 1e-12);
}

TEST(Soc, HostEfficiencyHintChangesFallbackTime)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        "main(input float x[1024], output float y) {"
        " index i[0:1023]; y = sum[i](x[i]*x[i]); }",
        {}, registry, lang::Domain::DA);
    SocRuntime runtime;
    target::WorkloadProfile profile;
    profile.invocations = 1000;
    const auto fast = runtime.execute(compiled, profile, {"<none>"},
                                      {{"TABLA", 0.2}});
    const auto slow = runtime.execute(compiled, profile, {"<none>"},
                                      {{"TABLA", 0.002}});
    // The efficient library is memory-bound (roofline), so the gap is
    // smaller than the 100x efficiency ratio but still an order apart.
    EXPECT_GT(slow.total.seconds, fast.total.seconds * 5);
}

TEST(Soc, StateTensorsPlacedOnceNotPerInvocation)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        "main(state float big[100000], input float x, output float y) {"
        " index i[0:99999];"
        " y = x + big[0];"
        " big[i] = big[i]*1; }",
        {}, registry, lang::Domain::DA);
    SocRuntime runtime;
    target::WorkloadProfile one;
    target::WorkloadProfile thousand;
    thousand.invocations = 1000;
    const auto r1 = runtime.execute(compiled, one);
    const auto r1000 = runtime.execute(compiled, thousand);
    // DRAM traffic must not scale with invocations: `state` data stays
    // on-chip (400 KB placed once; per-run bytes are a few scalars).
    EXPECT_LT(static_cast<double>(r1000.total.dramBytes),
              static_cast<double>(r1.total.dramBytes) * 20.0);
}

} // namespace
} // namespace polymath
