/**
 * @file
 * Golden byte-identity over the Table III suite: for every workload, the
 * printed srDFG (before and after the standard fixpoint pipeline) and
 * the serialized JSON graph must match the checked-in capture byte for
 * byte. The goldens were generated from the pre-interning seed build, so
 * this pins the op-interning refactor (and any later IR change) to being
 * a pure representation change — spellings, ordering, and structure of
 * all user-visible output stay identical.
 *
 * Regenerate (only when an intentional IR change lands) with:
 *   POLYMATH_UPDATE_GOLDENS=1 build/tests/test_golden_ir
 */
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <gtest/gtest.h>

#include "passes/pass.h"
#include "srdfg/printer.h"
#include "srdfg/serialize.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

std::string
goldenPath(const std::string &id)
{
    return std::string(POLYMATH_GOLDEN_DIR) + "/" + id + ".golden";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** The capture: printed srDFG pre-pipeline, printed srDFG post-pipeline
 *  (fixpoint), and the serialized JSON of the optimized graph. */
std::string
captureWorkload(const wl::Benchmark &bench)
{
    auto graph = wl::buildGraph(bench.source, bench.buildOpts);
    std::string out = "== " + bench.id + ": built ==\n";
    out += ir::printGraph(*graph);
    auto pipeline = pass::standardPipeline();
    pipeline.runToFixpoint(*graph);
    out += "== " + bench.id + ": optimized ==\n";
    out += ir::printGraph(*graph);
    out += "== " + bench.id + ": json ==\n";
    out += ir::toJson(*graph);
    out += "\n";
    return out;
}

class GoldenIr : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenIr, PrintedAndSerializedFormsMatchCapture)
{
    const auto &bench = wl::benchmarkById(GetParam());
    const std::string actual = captureWorkload(bench);
    const std::string path = goldenPath(bench.id);
    if (std::getenv("POLYMATH_UPDATE_GOLDENS") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " (run with POLYMATH_UPDATE_GOLDENS=1 to capture)";
    // EXPECT_EQ on multi-kilobyte strings produces unreadable failures;
    // report the first differing line instead.
    if (actual != expected) {
        std::istringstream a(actual);
        std::istringstream e(expected);
        std::string al;
        std::string el;
        int line = 1;
        while (std::getline(e, el)) {
            if (!std::getline(a, al))
                al = "<end of actual>";
            ASSERT_EQ(al, el) << path << ": first divergence at line "
                              << line;
            ++line;
        }
        FAIL() << path << ": actual output has trailing data past line "
               << line;
    }
}

std::vector<std::string>
tableIIIIds()
{
    std::vector<std::string> ids;
    for (const auto &bench : wl::tableIII())
        ids.push_back(bench.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(TableIII, GoldenIr,
                         ::testing::ValuesIn(tableIIIIds()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

} // namespace
} // namespace polymath
