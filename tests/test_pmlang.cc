/**
 * @file
 * Frontend tests: lexer tokens, parser productions and precedence,
 * semantic rules for type modifiers / index binding / calls / reductions.
 */
#include <gtest/gtest.h>

#include "pmlang/builtins.h"
#include "pmlang/lexer.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"

namespace polymath::lang {
namespace {

std::vector<Tok>
kindsOf(const std::string &src)
{
    Lexer lexer(src);
    std::vector<Tok> kinds;
    for (const auto &tok : lexer.lexAll())
        kinds.push_back(tok.kind);
    return kinds;
}

TEST(Lexer, BasicTokens)
{
    EXPECT_EQ(kindsOf("a = b + 2;"),
              (std::vector<Tok>{Tok::Ident, Tok::Assign, Tok::Ident,
                                Tok::Plus, Tok::IntLit, Tok::Semicolon,
                                Tok::Eof}));
}

TEST(Lexer, KeywordsAndDomains)
{
    EXPECT_EQ(kindsOf("input state RBT DL index reduction"),
              (std::vector<Tok>{Tok::KwInput, Tok::KwState, Tok::KwRBT,
                                Tok::KwDL, Tok::KwIndex, Tok::KwReduction,
                                Tok::Eof}));
}

TEST(Lexer, TwoCharOperators)
{
    EXPECT_EQ(kindsOf("<= >= == != && ||"),
              (std::vector<Tok>{Tok::Le, Tok::Ge, Tok::EqEq, Tok::NotEq,
                                Tok::AndAnd, Tok::OrOr, Tok::Eof}));
}

TEST(Lexer, NumbersIntVsFloat)
{
    Lexer lexer("3 3.5 1e3 2.5e-2 7e");
    const auto toks = lexer.lexAll();
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    EXPECT_EQ(toks[1].kind, Tok::FloatLit);
    EXPECT_EQ(toks[2].kind, Tok::FloatLit);
    EXPECT_EQ(toks[3].kind, Tok::FloatLit);
    // "7e" is an int followed by an identifier, not a malformed float.
    EXPECT_EQ(toks[4].kind, Tok::IntLit);
    EXPECT_EQ(toks[5].kind, Tok::Ident);
}

TEST(Lexer, CommentsAreSkipped)
{
    EXPECT_EQ(kindsOf("a // line\n /* block\n more */ b"),
              (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, TracksLineAndColumn)
{
    Lexer lexer("a\n  b");
    const auto toks = lexer.lexAll();
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_THROW(kindsOf("a $ b"), UserError);
    EXPECT_THROW(kindsOf("a & b"), UserError);
    EXPECT_THROW(kindsOf("/* unterminated"), UserError);
    EXPECT_THROW(kindsOf("\"unterminated"), UserError);
}

ExprPtr
parseExprText(const std::string &text)
{
    Lexer lexer(text);
    Parser parser(lexer.lexAll());
    return parser.parseStandaloneExpr();
}

TEST(Parser, PrecedenceMulOverAdd)
{
    EXPECT_EQ(exprToString(*parseExprText("a + b*c")), "(a + (b * c))");
    EXPECT_EQ(exprToString(*parseExprText("(a + b)*c")), "((a + b) * c)");
}

TEST(Parser, ComparisonBindsLooserThanArithmetic)
{
    EXPECT_EQ(exprToString(*parseExprText("a + 1 < b*2")),
              "((a + 1) < (b * 2))");
}

TEST(Parser, TernaryAndLogical)
{
    EXPECT_EQ(exprToString(*parseExprText("a && b || c ? x : y")),
              "(((a && b) || c) ? x : y)");
}

TEST(Parser, PowerIsRightAssociative)
{
    EXPECT_EQ(exprToString(*parseExprText("a ^ b ^ c")), "(a ^ (b ^ c))");
}

TEST(Parser, UnaryMinus)
{
    EXPECT_EQ(exprToString(*parseExprText("-a * b")), "(-a * b)");
}

TEST(Parser, SubscriptedReference)
{
    const auto e = parseExprText("A[i][j+1]");
    EXPECT_EQ(e->kind, ExprKind::Ref);
    ASSERT_EQ(e->args.size(), 2u);
    EXPECT_EQ(exprToString(*e), "A[i][(j + 1)]");
}

TEST(Parser, ReduceWithGuard)
{
    const auto e = parseExprText("sum[i][j: j != i](A[i][j])");
    ASSERT_EQ(e->kind, ExprKind::Reduce);
    EXPECT_EQ(e->name, "sum");
    ASSERT_EQ(e->axes.size(), 2u);
    EXPECT_EQ(e->axes[0].index, "i");
    EXPECT_EQ(e->axes[1].index, "j");
    EXPECT_EQ(e->axes[0].cond, nullptr);
    ASSERT_NE(e->axes[1].cond, nullptr);
}

TEST(Parser, BuiltinCall)
{
    const auto e = parseExprText("sigmoid(x + 1)");
    EXPECT_EQ(e->kind, ExprKind::Call);
    EXPECT_EQ(e->name, "sigmoid");
}

TEST(Parser, ReduceAxisMustBeBareIdent)
{
    EXPECT_THROW(parseExprText("sum[i+1](x)"), UserError);
}

TEST(Parser, ConditionalSubscriptOnlyOnAxes)
{
    EXPECT_THROW(parseExprText("A[i: i > 0]"), UserError);
}

TEST(Parser, ComponentAndProgram)
{
    const auto prog = parse(R"(
f(input float x[n], output float y[n]) {
    index i[0:n-1];
    y[i] = x[i]*2;
}
main(input float a[4], output float b[4]) {
    DSP: f(a, b);
}
)");
    ASSERT_EQ(prog.components.size(), 2u);
    EXPECT_EQ(prog.components[0].name, "f");
    ASSERT_EQ(prog.components[0].args.size(), 2u);
    EXPECT_EQ(prog.components[0].args[0].mod, Modifier::Input);
    const auto &call = *prog.components[1].body[0];
    EXPECT_EQ(call.kind, StmtKind::Call);
    EXPECT_EQ(call.domain, Domain::DSP);
    EXPECT_EQ(call.callee, "f");
}

TEST(Parser, ReductionDeclaration)
{
    const auto prog = parse("reduction mymin(a, b) = a < b ? a : b;\n"
                            "main(input float x[2], output float y) {"
                            " index i[0:1]; y = mymin[i](x[i]); }");
    ASSERT_EQ(prog.reductions.size(), 1u);
    EXPECT_EQ(prog.reductions[0].name, "mymin");
    EXPECT_EQ(prog.reductions[0].paramA, "a");
}

TEST(Parser, DomainAnnotationRequiresCall)
{
    EXPECT_THROW(parse("main(output float y) { DSP: y = 1; }"), UserError);
}

TEST(Parser, ErrorsCarryLocation)
{
    try {
        parse("main(input float x[2] { }");
        FAIL();
    } catch (const UserError &e) {
        EXPECT_TRUE(e.loc().valid());
    }
}

TEST(Parser, OverflowingLiteralIsAPositionedUserError)
{
    // 1e999 exceeds the double range; it must surface as a diagnostic
    // with a line:column, not escape as a raw std::out_of_range.
    const std::string src =
        "main(input float x, output float y) {\n"
        "  y = x * 1e999;\n"
        "}\n";
    try {
        parse(src);
        FAIL() << "expected a UserError for 1e999";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
        EXPECT_TRUE(e.loc().valid());
        EXPECT_EQ(e.loc().line, 2);
    }
}

TEST(Parser, OverflowingLiteralRecoversIntoDiagnostics)
{
    // With a diagnostic engine attached, the overflow is collected like
    // any other syntax error and the rest of the program still parses.
    const std::string src =
        "main(input float x, output float y) {\n"
        "  float a;\n"
        "  a = 1e999;\n"
        "  y = x;\n"
        "}\n";
    DiagnosticEngine diag;
    const auto prog = parseWithRecovery(src, diag);
    EXPECT_EQ(diag.errorCount(), 1u) << diag.str();
    ASSERT_FALSE(diag.diagnostics().empty());
    EXPECT_TRUE(diag.diagnostics().front().loc.valid());
    EXPECT_EQ(diag.diagnostics().front().loc.line, 3);
    ASSERT_EQ(prog.components.size(), 1u);
}

TEST(Parser, ExtremeButFiniteLiteralsParseExactly)
{
    const auto e = parseExprText("1e308");
    ASSERT_EQ(e->kind, ExprKind::Number);
    EXPECT_EQ(e->value, 1e308);
    EXPECT_EQ(parseExprText("5e-324")->value, 5e-324);
    EXPECT_EQ(parseExprText("0.1")->value, 0.1);
}

// --- semantic analysis ----------------------------------------------------

void
expectSemaError(const std::string &src, const std::string &needle)
{
    try {
        analyze(parse(src));
        FAIL() << "expected sema error containing '" << needle << "'";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(Sema, AcceptsFig4StyleProgram)
{
    EXPECT_NO_THROW(analyze(parse(R"(
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
main(input float A[2][3], input float x[3], output float y[2]) {
    DA: mvmul(A, x, y);
}
)")));
}

TEST(Sema, InputIsReadOnly)
{
    expectSemaError("main(input float x[2], output float y[2]) {"
                    " index i[0:1]; x[i] = 1; y[i] = 2; }",
                    "not writable");
}

TEST(Sema, ParamIsReadOnly)
{
    expectSemaError("main(param float p, output float y) { p = 1; y = 2; }",
                    "not writable");
}

TEST(Sema, OutputUnreadableBeforeAssignment)
{
    expectSemaError("main(output float y[2], output float z[2]) {"
                    " index i[0:1]; z[i] = y[i]; y[i] = 1; }",
                    "not readable");
}

TEST(Sema, OutputReadableAfterAssignment)
{
    EXPECT_NO_THROW(analyze(parse(
        "main(output float y[2]) { index i[0:1];"
        " y[i] = 1; y[i] = y[i] + 1; }")));
}

TEST(Sema, OutputMustBeAssigned)
{
    expectSemaError("main(input float x, output float y) { float t; t = x; }",
                    "never assigned");
}

TEST(Sema, UnboundIndexVariableRejected)
{
    expectSemaError("main(input float x[4], output float y) {"
                    " index i[0:3]; y = x[i]; }",
                    "not bound");
}

TEST(Sema, RankMismatchRejected)
{
    expectSemaError("main(input float x[2][2], output float y[2]) {"
                    " index i[0:1]; y[i] = x[i]; }",
                    "rank");
}

TEST(Sema, LocalReadBeforeWriteRejected)
{
    expectSemaError("main(output float y) { float t; y = t; }",
                    "not readable");
}

TEST(Sema, CallArityChecked)
{
    expectSemaError(
        "f(input float x, output float y) { y = x; }"
        "main(input float a, output float b) { f(a); b = a; }",
        "argument");
}

TEST(Sema, ExpressionArgOnlyForParams)
{
    expectSemaError(
        "f(input float x, output float y) { y = x; }"
        "main(output float b) { f(1 + 2, b); }",
        "param");
}

TEST(Sema, OutputActualMustBeWritable)
{
    expectSemaError(
        "f(input float x, output float y) { y = x; }"
        "main(input float a, input float c, output float b) {"
        " f(a, c); b = a; }",
        "must be writable");
}

TEST(Sema, RecursionRejected)
{
    expectSemaError(
        "f(input float x, output float y) { float t; g(x, t); y = t; }"
        "g(input float x, output float y) { float t; f(x, t); y = t; }"
        "main(input float a, output float b) { f(a, b); }",
        "recursive");
}

TEST(Sema, UnknownReductionRejected)
{
    expectSemaError("main(input float x[3], output float y) {"
                    " index i[0:2]; y = median[i](x[i]); }",
                    "unknown reduction");
}

TEST(Sema, CustomReductionBodyRestricted)
{
    expectSemaError("reduction bad(a, b) = a + c;"
                    "main(input float x[2], output float y) {"
                    " index i[0:1]; y = bad[i](x[i]); }",
                    "reduction body");
}

TEST(Sema, BuiltinArityChecked)
{
    expectSemaError("main(input float x, output float y) {"
                    " y = sigmoid(x, x); }",
                    "takes 1");
}

TEST(Sema, MissingEntryRejected)
{
    expectSemaError("f(input float x, output float y) { y = x; }",
                    "entry");
}

TEST(Sema, DuplicateComponentRejected)
{
    expectSemaError("main(output float y) { y = 1; }"
                    "main(output float z) { z = 2; }",
                    "duplicate");
}

TEST(Sema, IndexArithmeticRestrictedToIntParams)
{
    expectSemaError("main(input float v, input float x[4],"
                    " output float y[4]) {"
                    " index i[0:3]; y[i] = x[i*v]; }",
                    "index arithmetic");
}

TEST(Builtins, RegistryBasics)
{
    EXPECT_TRUE(isBuiltinFunction("sigmoid"));
    EXPECT_TRUE(isBuiltinFunction("pow"));
    EXPECT_FALSE(isBuiltinFunction("sum"));
    EXPECT_TRUE(isBuiltinReduction("sum"));
    EXPECT_EQ(builtinArity("pow"), 2);
    EXPECT_EQ(builtinArity("erf"), 1);
}

TEST(Builtins, EvaluationMatchesLibm)
{
    EXPECT_DOUBLE_EQ(evalBuiltin1("sigmoid", 0.0), 0.5);
    EXPECT_DOUBLE_EQ(evalBuiltin1("relu", -3.0), 0.0);
    EXPECT_DOUBLE_EQ(evalBuiltin1("gauss", 0.0), 1.0);
    EXPECT_DOUBLE_EQ(evalBuiltin2("max", 2.0, 5.0), 5.0);
    EXPECT_DOUBLE_EQ(reductionIdentity("prod"), 1.0);
    EXPECT_DOUBLE_EQ(applyBuiltinReduction("min", 4.0, 2.0), 2.0);
}

} // namespace
} // namespace polymath::lang
