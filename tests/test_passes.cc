/**
 * @file
 * Pass framework tests: each pass's specific rewrites plus the invariant
 * that the standard pipeline preserves program semantics on every Table
 * III-style structure.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.h"
#include "interp/interpreter.h"
#include "passes/pass.h"
#include "passes/passes.h"
#include "lower/lower.h"
#include "srdfg/builder.h"
#include "srdfg/traversal.h"
#include "targets/common/op_sets.h"
#include "workloads/programs.h"

namespace polymath {
namespace {

using pass::PassManager;

int64_t
countOp(const ir::Graph &g, std::string_view op)
{
    const ir::Op target = ir::Op::intern(op);
    int64_t n = 0;
    ir::forEachNodeRecursive(g, [&](const ir::Graph &, const ir::Node &node) {
        n += node.op == target;
    });
    return n;
}

int64_t
countKind(const ir::Graph &g, ir::NodeKind kind)
{
    int64_t n = 0;
    ir::forEachNodeRecursive(g, [&](const ir::Graph &, const ir::Node &node) {
        n += node.kind == kind;
    });
    return n;
}

TEST(ConstantFolding, FoldsScalarExpressions)
{
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y) { y = x * (2 + 3*4); }");
    PassManager pm;
    pm.add(pass::createConstantFolding());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    // 2 + 3*4 collapses to one constant; only the final mul remains.
    EXPECT_EQ(countOp(*g, "mul"), 1);
    EXPECT_EQ(countOp(*g, "add"), 0);
    auto out = interp::evaluate(*g, {{"x", Tensor::scalar(2.0)}});
    EXPECT_EQ(out.at("y").scalarValue(), 28.0);
}

TEST(ConstantFolding, DoesNotFoldScatterStores)
{
    auto g = ir::compileToSrdfg(
        "main(output float y[4]) { index i[0:3]; y[0] = 7; y[i] = y[i]; }");
    PassManager pm;
    pm.add(pass::createConstantFolding());
    EXPECT_NO_THROW(pm.run(*g));
    g->validate();
}

TEST(Simplify, MulByOneBecomesMove)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[4], output float y[4]) {"
        " index i[0:3]; y[i] = x[i]*1; }");
    PassManager pm;
    pm.add(pass::createSimplify());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(countOp(*g, "mul"), 0);
    auto out = interp::evaluate(*g, {{"x", Tensor::vec({1, 2, 3, 4})}});
    EXPECT_EQ(out.at("y").at(int64_t{3}), 4.0);
}

TEST(Simplify, AddZeroAndMulZero)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[4], output float y[4], output float z[4]) {"
        " index i[0:3]; y[i] = x[i] + 0; z[i] = x[i]*0; }");
    PassManager pm;
    pm.add(pass::createSimplify());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(countOp(*g, "add"), 0);
    EXPECT_EQ(countOp(*g, "mul"), 0);
    auto out = interp::evaluate(*g, {{"x", Tensor::vec({1, 2, 3, 4})}});
    EXPECT_EQ(out.at("y").at(int64_t{1}), 2.0);
    EXPECT_EQ(out.at("z").at(int64_t{1}), 0.0);
}

TEST(Simplify, SelectOnConstantCondition)
{
    auto g = ir::compileToSrdfg(
        "main(input float a[2], input float b[2], output float y[2]) {"
        " index i[0:1]; y[i] = 1 > 2 ? a[i] : b[i]; }");
    PassManager pm;
    pm.add(pass::createConstantFolding());
    pm.add(pass::createSimplify());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(countOp(*g, "select"), 0);
    auto out = interp::evaluate(
        *g, {{"a", Tensor::vec({1, 1})}, {"b", Tensor::vec({5, 6})}});
    EXPECT_EQ(out.at("y").at(int64_t{0}), 5.0);
}

TEST(Cse, MergesDuplicateSubexpressions)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[8], input float w[8], output float a,"
        " output float b) {"
        " index i[0:7];"
        " a = sum[i](w[i]*x[i]);"
        " b = sum[i](w[i]*x[i]) + 1; }");
    const auto before = countKind(*g, ir::NodeKind::Reduce);
    PassManager pm;
    pm.add(pass::createCse());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(before, 2);
    EXPECT_EQ(countKind(*g, ir::NodeKind::Reduce), 1);
    EXPECT_EQ(countOp(*g, "mul"), 1);

    Rng rng(1);
    Tensor x(DType::Float, Shape{8});
    Tensor w(DType::Float, Shape{8});
    for (int64_t i = 0; i < 8; ++i) {
        x.at(i) = rng.gaussian();
        w.at(i) = rng.gaussian();
    }
    auto out = interp::evaluate(*g, {{"x", x}, {"w", w}});
    EXPECT_NEAR(out.at("b").scalarValue() - out.at("a").scalarValue(), 1.0,
                1e-12);
}

TEST(Cse, DeduplicatesConstants)
{
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y, output float z) {"
        " y = x + 5; z = x - 5; }");
    PassManager pm;
    pm.add(pass::createCse());
    pm.run(*g);
    EXPECT_EQ(countKind(*g, ir::NodeKind::Constant), 1);
}

TEST(Cse, FailsLoudlyOnOutputLessNode)
{
    // A value-producing node with no output access is a malformed graph;
    // CSE keys on outs[0], so it must panic with a diagnosable message
    // instead of indexing into an empty vector (UB).
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y) { y = x + 5; }");
    g->addNode(ir::NodeKind::Map, ir::OpCode::Mul); // no output access attached
    PassManager pm;
    pm.add(pass::createCse());
    try {
        pm.run(*g);
        FAIL() << "expected an InternalError for the output-less node";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("no outputs"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Dce, RemovesUnreachableChains)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[4], output float y[4]) {"
        " index i[0:3];"
        " float dead1[4], dead2[4];"
        " dead1[i] = x[i]*3;"
        " dead2[i] = dead1[i] + 1;"
        " y[i] = x[i]; }");
    PassManager pm;
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(countOp(*g, "mul"), 0);
    EXPECT_EQ(countOp(*g, "add"), 0);
    g->validate();
}

TEST(Dce, KeepsStateUpdates)
{
    auto g = ir::compileToSrdfg(
        "main(state float acc, input float x) { acc = acc + x; }");
    PassManager pm;
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    EXPECT_EQ(countOp(*g, "add"), 1);
}

TEST(ShapeCheck, PassesOnValidGraphs)
{
    auto g = ir::compileToSrdfg(wl::mobileRobotProgram());
    PassManager pm;
    pm.add(pass::createShapeCheck());
    const auto results = pm.run(*g);
    EXPECT_FALSE(results[0].changed);
}

TEST(AlgebraicCombination, FusesAddOfTwoMatvecComponents)
{
    auto g = ir::compileToSrdfg(R"(
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
main(input float A[4][3], input float B[4][5], input float x[3],
     input float z[5], output float y[4]) {
    index j[0:3];
    float p[4], q[4];
    DA: mvmul(A, x, p);
    DA: mvmul(B, z, q);
    y[j] = p[j] + q[j];
}
)");
    Rng rng(3);
    std::map<std::string, Tensor> in;
    for (const auto &[name, shape] :
         std::map<std::string, Shape>{{"A", Shape{4, 3}},
                                      {"B", Shape{4, 5}},
                                      {"x", Shape{3}},
                                      {"z", Shape{5}}}) {
        Tensor t(DType::Float, shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian();
        in[name] = t;
    }
    const auto before = interp::evaluate(*g, in);

    PassManager pm;
    pm.add(pass::createAlgebraicCombination());
    pm.add(pass::createDeadNodeElimination());
    const auto results = pm.runToFixpoint(*g);
    bool fused = false;
    for (const auto &r : results)
        fused |= r.name == "algebraic-combination" && r.changed;
    EXPECT_TRUE(fused);

    // The two component matvecs are replaced by one concatenated product.
    EXPECT_EQ(countKind(*g, ir::NodeKind::Component), 0);
    EXPECT_EQ(countKind(*g, ir::NodeKind::Reduce), 1);

    const auto after = interp::evaluate(*g, in);
    EXPECT_LT(Tensor::maxAbsDiff(before.at("y"), after.at("y")), 1e-12);
}

TEST(AlgebraicCombination, FusesStatementLevelMatvecs)
{
    auto g = ir::compileToSrdfg(R"(
main(input float A[4][3], input float B[4][5], input float x[3],
     input float z[5], output float y[4]) {
    index j[0:3], i[0:2], k[0:4];
    float p[4], q[4];
    p[j] = sum[i](A[j][i]*x[i]);
    q[j] = sum[k](B[j][k]*z[k]);
    y[j] = p[j] + q[j];
}
)");
    PassManager pm;
    pm.add(pass::createAlgebraicCombination());
    const auto results = pm.run(*g);
    EXPECT_TRUE(results[0].changed);
    g->validate();
}

TEST(AlgebraicCombination, DoesNotFuseTransposedAccess)
{
    // x[i]*A[i][j] sums over the FIRST axis of A (A^T v): the canonical
    // matcher must not fire, and semantics must survive the attempt.
    auto g = ir::compileToSrdfg(R"(
main(input float A[3][4], input float B[4][5], input float x[3],
     input float z[5], output float y[4]) {
    index j[0:3], i[0:2], k[0:4];
    float p[4], q[4];
    p[j] = sum[i](x[i]*A[i][j]);
    q[j] = sum[k](B[j][k]*z[k]);
    y[j] = p[j] + q[j];
}
)");
    Rng rng(13);
    std::map<std::string, Tensor> in;
    for (const auto &[name, shape] :
         std::map<std::string, Shape>{{"A", Shape{3, 4}},
                                      {"B", Shape{4, 5}},
                                      {"x", Shape{3}},
                                      {"z", Shape{5}}}) {
        Tensor t(DType::Float, shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian();
        in[name] = t;
    }
    const auto before = interp::evaluate(*g, in);
    PassManager pm;
    pm.add(pass::createAlgebraicCombination());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    g->validate();
    const auto after = interp::evaluate(*g, in);
    EXPECT_LT(Tensor::maxAbsDiff(before.at("y"), after.at("y")), 1e-12);
}

TEST(AlgebraicCombination, LeavesNonMatvecAddsAlone)
{
    auto g = ir::compileToSrdfg(
        "main(input float a[4], input float b[4], output float y[4]) {"
        " index i[0:3]; y[i] = a[i] + b[i]; }");
    PassManager pm;
    pm.add(pass::createAlgebraicCombination());
    const auto results = pm.run(*g);
    EXPECT_FALSE(results[0].changed);
}

// Semantics preservation sweep over representative workloads.
class PipelinePreservation : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PipelinePreservation, StandardPipelineKeepsOutputs)
{
    std::string src;
    const std::string which = GetParam();
    if (which == "mobile_robot")
        src = wl::mobileRobotProgram();
    else if (which == "kmeans")
        src = wl::kmeansProgram(12, 5, 3);
    else if (which == "logreg")
        src = wl::logregProgram(16, 6);
    else if (which == "blks")
        src = wl::blackScholesProgram(8);
    else if (which == "bfs")
        src = wl::bfsProgram(10);

    auto g = ir::compileToSrdfg(src);

    // Bind every input deterministically.
    Rng rng(11);
    std::map<std::string, Tensor> in;
    for (ir::ValueId v : g->inputs) {
        const auto &md = g->value(v).md;
        Tensor t(md.dtype == DType::Complex ? DType::Complex : DType::Float,
                 md.shape);
        for (int64_t i = 0; i < t.numel(); ++i) {
            if (t.isComplex())
                t.cat(i) = {rng.uniform(0.5, 2.0), rng.uniform(-1.0, 1.0)};
            else
                t.at(i) = rng.uniform(0.5, 2.0);
        }
        in[md.name] = t;
    }
    const auto before = interp::evaluate(*g, in);

    auto pm = pass::standardPipeline();
    pm.runToFixpoint(*g);
    g->validate();
    const auto after = interp::evaluate(*g, in);

    for (const auto &[name, tensor] : before) {
        ASSERT_TRUE(after.count(name)) << name;
        EXPECT_LT(Tensor::maxAbsDiff(tensor, after.at(name)), 1e-9)
            << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, PipelinePreservation,
                         ::testing::Values("mobile_robot", "kmeans",
                                           "logreg", "blks", "bfs"));

TEST(IdentityElision, ComposesGatherIntoConsumer)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[16], output float y[4]) {"
        " index i[0:3];"
        " float t[8];"
        " t[i] = x[2*i];"          // pure strided gather (partial write)
        " y[i] = t[i] + 1; }");
    // The gather above is a *partial* write (t has 8 slots, 4 written):
    // elision must NOT fire on it.
    PassManager pm;
    pm.add(pass::createIdentityElision());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    g->validate();
    auto out = interp::evaluate(*g, {{"x", [] {
        Tensor t(DType::Float, Shape{16});
        for (int64_t i = 0; i < 16; ++i)
            t.at(i) = static_cast<double>(i);
        return t;
    }()}});
    EXPECT_EQ(out.at("y").at(int64_t{3}), 7.0);

    // Full-coverage gather: elision fires and the move disappears.
    auto g2 = ir::compileToSrdfg(
        "main(input float x[16], output float y[4]) {"
        " index i[0:3];"
        " float t[4];"
        " t[i] = x[2*i];"
        " y[i] = t[i] + 1; }");
    const auto before = countOp(*g2, "identity");
    PassManager pm2;
    pm2.add(pass::createIdentityElision());
    pm2.add(pass::createDeadNodeElimination());
    pm2.runToFixpoint(*g2);
    g2->validate();
    EXPECT_LT(countOp(*g2, "identity"), before);
    auto out2 = interp::evaluate(*g2, {{"x", [] {
        Tensor t(DType::Float, Shape{16});
        for (int64_t i = 0; i < 16; ++i)
            t.at(i) = static_cast<double>(i);
        return t;
    }()}});
    EXPECT_EQ(out2.at("y").at(int64_t{3}), 7.0);
}

TEST(IdentityElision, PreservesSemanticsAfterLoweringFft)
{
    auto g = ir::compileToSrdfg(wl::fftProgram(64));
    const auto signal = [] {
        Tensor t(DType::Complex, Shape{64});
        Rng rng(4);
        for (int64_t i = 0; i < 64; ++i)
            t.cat(i) = {rng.gaussian(), rng.gaussian()};
        return t;
    }();
    std::map<std::string, Tensor> in = {{"x", signal}};
    {
        Tensor tw(DType::Complex, Shape{32});
        for (int64_t j = 0; j < 32; ++j) {
            const double ang = -2.0 * 3.14159265358979323846 *
                               static_cast<double>(j) / 64.0;
            tw.cat(j) = {std::cos(ang), std::sin(ang)};
        }
        in["tw"] = tw;
    }
    const auto before = interp::evaluate(*g, in);

    // Splice everything to one level, then elide and re-check.
    lower::SupportedOps om;
    om[lang::Domain::DSP] = target::scalarAluOps();
    om[lang::Domain::DSP].merge({ir::OpCode::Sum, ir::OpCode::Re,
                                 ir::OpCode::Im, ir::OpCode::Conj});
    lower::lowerGraph(*g, om, lang::Domain::DSP);
    PassManager pm;
    pm.add(pass::createIdentityElision());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*g);
    g->validate();
    const auto after = interp::evaluate(*g, in);
    EXPECT_LT(Tensor::maxAbsDiff(before.at("y"), after.at("y")), 1e-12);
}

TEST(PassManager, ReportsTimingsAndFixpointTerminates)
{
    auto g = ir::compileToSrdfg(wl::mobileRobotProgram());
    auto pm = pass::standardPipeline();
    const auto results = pm.runToFixpoint(*g, 3);
    EXPECT_GE(results.size(), pm.size());
    EXPECT_LE(results.size(), pm.size() * 3);
    for (const auto &r : results)
        EXPECT_FALSE(r.name.empty());
}

} // namespace
} // namespace polymath
