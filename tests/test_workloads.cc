/**
 * @file
 * Functional validation of every workload: the PMLang program executed by
 * the interpreter must match the hand-written native reference
 * element-for-element (at test scale), for all five domains and the
 * end-to-end application kernels.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "core/rng.h"
#include "interp/interpreter.h"
#include "srdfg/builder.h"
#include "workloads/datasets.h"
#include "workloads/programs.h"
#include "targets/common/backend.h"
#include "lower/lower.h"
#include "srdfg/traversal.h"
#include "workloads/reference.h"
#include "workloads/suite.h"

namespace polymath::wl {
namespace {

Tensor
randomTensor(Shape shape, uint64_t seed, double lo = -1.0, double hi = 1.0)
{
    Rng rng(seed);
    Tensor t(DType::Float, shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.at(i) = rng.uniform(lo, hi);
    return t;
}

// --- DSP ---------------------------------------------------------------------

class FftSizes : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(FftSizes, MatchesIterativeReference)
{
    const int64_t n = GetParam();
    auto g = ir::compileToSrdfg(fftProgram(n));
    const Tensor signal = complexSignal(n, 77);
    auto out = interp::evaluate(
        *g, {{"x", signal}, {"tw", twiddleTable(n)}});
    const Tensor expect = ref::fftTensor(signal);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("y"), expect), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(8, 64, 256, 1024));

TEST(Fft, ParsevalHolds)
{
    const int64_t n = 256;
    auto g = ir::compileToSrdfg(fftProgram(n));
    const Tensor signal = complexSignal(n, 3);
    auto out = interp::evaluate(
        *g, {{"x", signal}, {"tw", twiddleTable(n)}});
    double time_energy = 0.0;
    double freq_energy = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        time_energy += std::norm(signal.cat(i));
        freq_energy += std::norm(out.at("y").cat(i));
    }
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-6 * time_energy);
}

TEST(Dct, MatchesBlockedReference)
{
    auto g = ir::compileToSrdfg(dctProgram(32, 32));
    const Tensor img = randomImage(32, 32, 5);
    const Tensor basis = dctBasis();
    auto out = interp::evaluate(*g, {{"img", img}, {"C", basis}});
    const Tensor expect = ref::dct8x8(img, basis);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("out"), expect), 1e-9);
}

TEST(Dct, DcCoefficientIsBlockMean)
{
    auto g = ir::compileToSrdfg(dctProgram(8, 8));
    Tensor img(DType::Float, Shape{8, 8});
    for (int64_t i = 0; i < 64; ++i)
        img.at(i) = 10.0;
    auto out = interp::evaluate(*g, {{"img", img}, {"C", dctBasis()}});
    EXPECT_NEAR(out.at("out").at({0, 0}), 80.0, 1e-9); // 10 * 8
    EXPECT_NEAR(out.at("out").at({3, 4}), 0.0, 1e-9);
}

// --- Data analytics -----------------------------------------------------------

TEST(Kmeans, StepMatchesReferenceAndConverges)
{
    const int64_t n = 60;
    const int64_t d = 5;
    const int64_t k = 3;
    Tensor centers;
    const Tensor x = gaussianClusters(n, d, k, 9, &centers);
    auto g = ir::compileToSrdfg(kmeansProgram(n, d, k));

    interp::Interpreter it(*g);
    it.setInput("x", x);
    Tensor mu(DType::Float, Shape{k, d});
    for (int64_t c = 0; c < k; ++c) {
        for (int64_t j = 0; j < d; ++j)
            mu.at({c, j}) = x.at({c, j}); // first points as seeds
    }
    it.setInput("mu", mu);

    Tensor ref_mu = mu;
    for (int iter = 0; iter < 8; ++iter) {
        it.run();
        Tensor ref_assign;
        ref_mu = ref::kmeansStep(x, ref_mu, &ref_assign);
        EXPECT_LT(Tensor::maxAbsDiff(it.output("mu"), ref_mu), 1e-9)
            << "iter " << iter;
        EXPECT_LT(Tensor::maxAbsDiff(it.output("assign"), ref_assign),
                  1e-9);
    }
    // Converged centroids sit near the true generating centers (within
    // cluster noise).
    double worst = 1e9;
    for (int64_t c = 0; c < k; ++c) {
        for (int64_t t = 0; t < k; ++t) {
            double dist = 0.0;
            for (int64_t j = 0; j < d; ++j) {
                const double diff =
                    it.output("mu").at({c, j}) - centers.at({t, j});
                dist += diff * diff;
            }
            worst = std::min(worst, dist);
        }
    }
    EXPECT_LT(std::sqrt(worst), 1.0);
}

TEST(Lrmf, GradientStepMatchesReferenceAndReducesError)
{
    const int64_t users = 12;
    const int64_t items = 9;
    const int64_t rank = 3;
    const Tensor r = ratingsMatrix(users, items, rank, 21);
    auto g = ir::compileToSrdfg(lrmfProgram(users, items, rank));

    interp::Interpreter it(*g);
    it.setInput("r", r);
    Tensor w = randomTensor(Shape{users, rank}, 1, 0.1, 0.5);
    Tensor h = randomTensor(Shape{rank, items}, 2, 0.1, 0.5);
    it.setInput("w", w);
    it.setInput("h", h);
    it.setInput("lr", Tensor::scalar(0.01));

    auto frobenius_error = [&](const Tensor &wt, const Tensor &ht) {
        double err = 0.0;
        for (int64_t u = 0; u < users; ++u) {
            for (int64_t i = 0; i < items; ++i) {
                double dot = 0.0;
                for (int64_t q = 0; q < rank; ++q)
                    dot += wt.at({u, q}) * ht.at({q, i});
                err += (r.at({u, i}) - dot) * (r.at({u, i}) - dot);
            }
        }
        return err;
    };
    const double initial = frobenius_error(w, h);
    for (int iter = 0; iter < 5; ++iter) {
        it.run();
        ref::lrmfStep(r, &w, &h, 0.01);
        EXPECT_LT(Tensor::maxAbsDiff(it.output("w"), w), 1e-9);
        EXPECT_LT(Tensor::maxAbsDiff(it.output("h"), h), 1e-9);
    }
    EXPECT_LT(frobenius_error(w, h), initial * 0.8);
}

TEST(Logreg, TrainingStepMatchesReferenceAndLearns)
{
    const int64_t n = 40;
    const int64_t d = 6;
    const auto [x, y] = labeledSet(n, d, 31);
    auto g = ir::compileToSrdfg(logregProgram(n, d));

    interp::Interpreter it(*g);
    it.setInput("x", x);
    it.setInput("y", y);
    Tensor w(DType::Float, Shape{d});
    it.setInput("w", w);
    it.setInput("lr", Tensor::scalar(0.05));
    for (int iter = 0; iter < 30; ++iter) {
        it.run();
        ref::logregStep(x, y, &w, 0.05);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("w"), w), 1e-8);
    }
    // Training accuracy beats chance comfortably.
    int correct = 0;
    for (int64_t i = 0; i < n; ++i) {
        double dot = 0.0;
        for (int64_t j = 0; j < d; ++j)
            dot += w.at(j) * x.at({i, j});
        correct += (dot > 0.0) == (y.at(i) > 0.5);
    }
    EXPECT_GT(correct, static_cast<int>(n * 3 / 4));
}

TEST(BlackScholes, MatchesClosedForm)
{
    const int64_t n = 64;
    auto g = ir::compileToSrdfg(blackScholesProgram(n));
    const auto batch = optionBatch(n, 13);
    auto out = interp::evaluate(*g, {{"s", batch.spot},
                                     {"strike", batch.strike},
                                     {"t", batch.expiry},
                                     {"rate", Tensor::scalar(0.05)},
                                     {"vol", Tensor::scalar(0.25)}});
    const Tensor expect = ref::blackScholes(batch.spot, batch.strike,
                                            batch.expiry, 0.05, 0.25);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("price"), expect), 1e-9);
    // No-arbitrage sanity: price within [max(S-K e^{-rt},0), S].
    for (int64_t i = 0; i < n; ++i) {
        const double p = out.at("price").at(i);
        EXPECT_GE(p, -1e-9);
        EXPECT_LE(p, batch.spot.at(i) + 1e-9);
    }
}

// --- Graph analytics -----------------------------------------------------------

TEST(Bfs, IteratesToExactHopDistances)
{
    const int64_t n = 48;
    const Tensor adj = denseRmatAdjacency(n, 4 * n, 17, false);
    auto g = ir::compileToSrdfg(bfsProgram(n));

    constexpr double kInf = 1e9;
    Tensor dist(DType::Float, Shape{n});
    for (int64_t i = 0; i < n; ++i)
        dist.at(i) = kInf;
    dist.at(int64_t{0}) = 0.0;

    interp::Interpreter it(*g);
    it.setInput("adj", adj);
    it.setInput("dist", dist);
    Tensor ref_dist = dist;
    for (int iter = 0; iter < n; ++iter) {
        it.run();
        ref_dist = ref::graphRelax(adj, ref_dist, false);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("dist"), ref_dist), 1e-9);
    }
    const Tensor exact = ref::bfsDistances(adj, 0);
    EXPECT_LT(Tensor::maxAbsDiff(it.output("dist"), exact), 1e-9);
}

TEST(Sssp, RelaxationMatchesWeightedReference)
{
    const int64_t n = 32;
    const Tensor adj = denseRmatAdjacency(n, 3 * n, 23, true);
    auto g = ir::compileToSrdfg(sssPProgram(n));

    constexpr double kInf = 1e9;
    Tensor dist(DType::Float, Shape{n});
    for (int64_t i = 0; i < n; ++i)
        dist.at(i) = kInf;
    dist.at(int64_t{0}) = 0.0;

    interp::Interpreter it(*g);
    it.setInput("adj", adj);
    it.setInput("dist", dist);
    Tensor ref_dist = dist;
    for (int iter = 0; iter < n; ++iter) {
        it.run();
        ref_dist = ref::graphRelax(adj, ref_dist, true);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("dist"), ref_dist), 1e-9);
    }
    // Triangle inequality on every edge at the fixpoint.
    const auto &final_dist = it.output("dist");
    for (int64_t u = 0; u < n; ++u) {
        for (int64_t v = 0; v < n; ++v) {
            if (adj.at({u, v}) > 0) {
                EXPECT_LE(final_dist.at(v),
                          final_dist.at(u) + adj.at({u, v}) + 1e-9);
            }
        }
    }
}

TEST(Pagerank, IterationMatchesReferenceAndConservesMass)
{
    const int64_t n = 40;
    Tensor adj = denseRmatAdjacency(n, 4 * n, 31, false);
    // Guarantee no dangling vertices (the program divides by out-degree).
    for (int64_t u = 0; u < n; ++u) {
        bool any = false;
        for (int64_t v = 0; v < n; ++v)
            any |= adj.at({u, v}) > 0;
        if (!any)
            adj.at({u, (u + 1) % n}) = 1.0;
    }
    Tensor outdeg(DType::Float, Shape{n});
    for (int64_t u = 0; u < n; ++u) {
        double d = 0.0;
        for (int64_t v = 0; v < n; ++v)
            d += adj.at({u, v}) > 0 ? 1.0 : 0.0;
        outdeg.at(u) = d;
    }
    Tensor rank(DType::Float, Shape{n});
    for (int64_t v = 0; v < n; ++v)
        rank.at(v) = 1.0 / static_cast<double>(n);

    auto g = ir::compileToSrdfg(pagerankProgram(n));
    interp::Interpreter it(*g);
    it.setInput("adj", adj);
    it.setInput("outdeg", outdeg);
    it.setInput("rank", rank);
    it.setInput("damp", Tensor::scalar(0.85));

    Tensor ref_rank = rank;
    Tensor prev = rank;
    for (int iter = 0; iter < 30; ++iter) {
        it.run();
        ref_rank = ref::pagerankIter(adj, outdeg, ref_rank, 0.85);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("rank"), ref_rank), 1e-12)
            << "iter " << iter;
        prev = it.output("rank");
    }
    // Probability mass is conserved (dangling-free) and the iteration
    // has essentially converged after 30 rounds.
    double mass = 0.0;
    for (int64_t v = 0; v < n; ++v) {
        mass += prev.at(v);
        EXPECT_GT(prev.at(v), 0.0);
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
    it.run();
    EXPECT_LT(Tensor::maxAbsDiff(it.output("rank"), prev), 1e-6);
}

TEST(Pagerank, CompilesToGraphicionado)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        pagerankProgram(48), {}, registry, lang::Domain::GA);
    ASSERT_EQ(compiled.partitions.size(), 1u);
    EXPECT_EQ(compiled.partitions.front().accel, "Graphicionado");
}

// --- Robotics -------------------------------------------------------------------

TEST(MobileRobot, TwentyStepsMatchReference)
{
    auto g = ir::compileToSrdfg(mobileRobotProgram());
    const Tensor p = randomTensor(Shape{30, 3}, 41, -0.2, 0.2);
    const Tensor h = randomTensor(Shape{30, 20}, 42, -0.1, 0.1);
    const Tensor hq = randomTensor(Shape{20, 30}, 43, -0.05, 0.05);
    const Tensor rg = randomTensor(Shape{20, 20}, 44, -0.05, 0.05);
    const Tensor pos_ref = randomTensor(Shape{30}, 45);

    interp::Interpreter it(*g);
    it.setInput("P", p);
    it.setInput("H", h);
    it.setInput("HQ_g", hq);
    it.setInput("R_g", rg);
    it.setInput("pos_ref", pos_ref);
    it.setInput("ctrl_mdl", Tensor(DType::Float, Shape{20}));

    Tensor ref_ctrl(DType::Float, Shape{20});
    Rng rng(50);
    for (int step = 0; step < 20; ++step) {
        const Tensor pos = Tensor::vec(
            {rng.gaussian(), rng.gaussian(), rng.gaussian() * 0.1});
        it.setInput("pos", pos);
        it.run();
        const auto expect =
            ref::mpcStep(pos, ref_ctrl, pos_ref, p, hq, h, rg, 10);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("ctrl_sgnl"),
                                     expect.ctrlSgnl),
                  1e-9);
        ASSERT_LT(Tensor::maxAbsDiff(it.output("ctrl_mdl"),
                                     expect.ctrlMdl),
                  1e-9);
        ref_ctrl = expect.ctrlMdl;
    }
}

TEST(Hexacopter, BuildsAndProducesFiniteCommands)
{
    auto g = ir::compileToSrdfg(hexacopterProgram());
    interp::Interpreter it(*g);
    Rng rng(61);
    auto bind = [&](const std::string &name, Shape shape, double scale) {
        Tensor t(DType::Float, shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian() * scale;
        it.setInput(name, t);
    };
    bind("meas", Shape{12}, 0.1);
    bind("mix", Shape{6, 6}, 0.3);
    bind("J_inv", Shape{3, 3}, 0.2);
    bind("A", Shape{384, 12}, 0.05);
    bind("B", Shape{384, 192}, 0.01);
    bind("ref", Shape{384}, 0.5);
    bind("Q", Shape{384}, 1.0);
    bind("Bt", Shape{192, 384}, 0.01);
    bind("Rg", Shape{192, 192}, 0.01);
    it.setInput("useq", Tensor(DType::Float, Shape{192}));
    it.setInput("mass", Tensor::scalar(1.4));
    it.setInput("dt", Tensor::scalar(0.01));
    it.setInput("lr", Tensor::scalar(0.05));
    for (int step = 0; step < 3; ++step) {
        it.run();
        const auto &cmd = it.output("rotor_cmd");
        for (int64_t i = 0; i < 6; ++i)
            EXPECT_TRUE(std::isfinite(cmd.at(i)));
    }
    // The control sequence actually updates (state is live).
    double norm = 0.0;
    for (int64_t i = 0; i < 192; ++i)
        norm += std::abs(it.output("useq").at(i));
    EXPECT_GT(norm, 0.0);
}

// --- Deep learning (tiny CNN against references) -----------------------------

TEST(Dnn, ConvAndDenseComponentsMatchReference)
{
    // A miniature network from the same component library the CNN
    // generators use: pad -> conv -> relu -> dense.
    const char *src = R"(
pad(input float x[C][H][W], param int p, output float y[C][HP][WP]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i+p][j+p] = x[c][i][j];
}
conv2d(input float x[C][HI][WI], param float wgt[K][C][R][S],
       param int stride, output float y[K][HO][WO]) {
    index k[0:K-1], i[0:HO-1], j[0:WO-1], c[0:C-1], r[0:R-1], q[0:S-1];
    y[k][i][j] = sum[c][r][q](x[c][i*stride+r][j*stride+q]
                              * wgt[k][c][r][q]);
}
relu_layer(input float x[C][H][W], output float y[C][H][W]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i][j] = relu(x[c][i][j]);
}
avgpool(input float x[C][H][W], output float y[C]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c] = sum[i][j](x[c][i][j]) / (H*W);
}
dense(input float x[I], param float w[O][I], param float b[O],
      output float y[O]) {
    index o[0:O-1], i[0:I-1];
    y[o] = b[o] + sum[i](w[o][i]*x[i]);
}
main(input float img[2][6][6], param float w0[3][2][3][3],
     param float wfc[4][3], param float bfc[4],
     output float logits[4]) {
    float t0[2][8][8], t1[3][3][3], t2[3][3][3], t3[3];
    DL: pad(img, 1, t0);
    DL: conv2d(t0, w0, 2, t1);
    DL: relu_layer(t1, t2);
    DL: avgpool(t2, t3);
    DL: dense(t3, wfc, bfc, logits);
}
)";
    auto g = ir::compileToSrdfg(src);
    const Tensor img = randomTensor(Shape{2, 6, 6}, 71);
    const Tensor w0 = randomTensor(Shape{3, 2, 3, 3}, 72);
    const Tensor wfc = randomTensor(Shape{4, 3}, 73);
    const Tensor bfc = randomTensor(Shape{4}, 74);
    auto out = interp::evaluate(*g, {{"img", img},
                                     {"w0", w0},
                                     {"wfc", wfc},
                                     {"bfc", bfc}});

    // Reference: pad, conv stride 2, relu, global avg, dense.
    Tensor padded(DType::Float, Shape{2, 8, 8});
    for (int64_t c = 0; c < 2; ++c) {
        for (int64_t i = 0; i < 6; ++i) {
            for (int64_t j = 0; j < 6; ++j)
                padded.at({c, i + 1, j + 1}) = img.at({c, i, j});
        }
    }
    Tensor conv = ref::conv2d(padded, w0, 2);
    Tensor pooled(DType::Float, Shape{3});
    for (int64_t k = 0; k < 3; ++k) {
        double acc = 0.0;
        for (int64_t i = 0; i < 3; ++i) {
            for (int64_t j = 0; j < 3; ++j)
                acc += std::max(conv.at({k, i, j}), 0.0);
        }
        pooled.at(k) = acc / 9.0;
    }
    const Tensor expect = ref::dense(pooled, wfc, bfc);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("logits"), expect), 1e-9);
}

TEST(Dnn, GeneratedNetworksHaveExpectedWork)
{
    auto resnet = ir::compileToSrdfg(resnet18Program());
    auto mobilenet = ir::compileToSrdfg(mobilenetProgram());
    // Real models: ResNet-18 ~1.8 GMACs, MobileNet-V1 ~0.57 GMACs.
    EXPECT_NEAR(static_cast<double>(resnet->scalarOpCount()), 3.6e9,
                0.4e9);
    EXPECT_NEAR(static_cast<double>(mobilenet->scalarOpCount()), 1.15e9,
                0.2e9);
    EXPECT_EQ(resnet->value(resnet->outputs[0]).md.shape, (Shape{1000}));
    EXPECT_EQ(mobilenet->value(mobilenet->outputs[0]).md.shape,
              (Shape{1000}));
}

// --- deep nesting -----------------------------------------------------------------

TEST(Nesting, FourLevelComponentTowerExecutes)
{
    const char *src = R"(
l4(input float x[2], output float y[2]) {
    index i[0:1];
    y[i] = x[i] + 1;
}
l3(input float x[2], output float y[2]) {
    float t[2];
    l4(x, t);
    l4(t, y);
}
l2(input float x[2], output float y[2]) {
    float t[2];
    l3(x, t);
    l3(t, y);
}
l1(input float x[2], output float y[2]) {
    float t[2];
    l2(x, t);
    l2(t, y);
}
main(input float x[2], output float y[2]) {
    RBT: l1(x, y);
}
)";
    auto g = ir::compileToSrdfg(src);
    EXPECT_EQ(ir::recursionDepth(*g), 5); // main + l1..l4 bodies
    auto out = interp::evaluate(*g, {{"x", Tensor::vec({0, 10})}});
    EXPECT_EQ(out.at("y").at(int64_t{0}), 8.0); // 2^3 additions of 1
    EXPECT_EQ(out.at("y").at(int64_t{1}), 18.0);

    // And it fully flattens for a scalar-op target.
    const auto registry = target::standardRegistry();
    lower::lowerGraph(*g, registry.supportedOpsByDomain(),
                      lang::Domain::RBT);
    EXPECT_EQ(ir::recursionDepth(*g), 1);
    auto flat = interp::evaluate(*g, {{"x", Tensor::vec({0, 10})}});
    EXPECT_EQ(flat.at("y").at(int64_t{0}), 8.0);
}

// --- End-to-end ------------------------------------------------------------------

TEST(BrainStimul, ClosedLoopRunsAndClassifierRespondsToSignal)
{
    auto g = ir::compileToSrdfg(brainStimulProgram());
    interp::Interpreter it(*g);
    Tensor w_cls(DType::Float, Shape{4096});
    for (int64_t i = 0; i < 64; ++i)
        w_cls.at(i) = 1e-7;
    it.setInput("w_cls", w_cls);
    it.setInput("tw", twiddleTable(4096));
    it.setInput("ctrl_mdl", Tensor(DType::Float, Shape{80}));
    it.setInput("pos_ref", randomTensor(Shape{120}, 81, 0.0, 1.0));
    it.setInput("P", randomTensor(Shape{120, 3}, 82, -0.1, 0.1));
    it.setInput("H", randomTensor(Shape{120, 80}, 83, -0.05, 0.05));
    it.setInput("HQ_g", randomTensor(Shape{80, 120}, 84, -0.02, 0.02));
    it.setInput("R_g", randomTensor(Shape{80, 80}, 85, -0.02, 0.02));
    it.setInput("pos", Tensor::vec({0.1, 0.2, 0.0}));

    it.setInput("ecog", complexSignal(4096, 90));
    it.run();
    const double with_signal = it.output("biomarker").scalarValue();

    it.setInput("ecog", Tensor(DType::Complex, Shape{4096})); // silence
    it.run();
    const double silent = it.output("biomarker").scalarValue();
    EXPECT_GT(with_signal, silent);
    EXPECT_NEAR(silent, 0.5, 1e-9); // sigmoid(0)
    EXPECT_EQ(it.output("stim_sgnl").numel(), 2);
}

} // namespace
} // namespace polymath::wl
