/**
 * @file
 * StreamScheduler tests: config validation, bit-identity of the stream
 * path with the sequential SocRuntime at zero fault rates, byte-identical
 * reports across worker counts and reruns, the conservation invariants
 * under a chaos sweep of all three fault classes, admission-control load
 * shedding, deadline policies, per-job Abort isolation, and migration on
 * accelerator outage.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.h"
#include "obs/metrics.h"
#include "soc/stream.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

using soc::ArrivalModel;
using soc::DeadlinePolicy;
using soc::DegradationPolicy;
using soc::FaultConfig;
using soc::JobOutcome;
using soc::SocRuntime;
using soc::StreamConfig;
using soc::StreamJob;
using soc::StreamReport;
using soc::StreamScheduler;

class StreamFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto &app = wl::tableIV().front(); // BrainStimul
        registry_ = target::standardRegistry();
        compiled_ = wl::compileBenchmark(app.source, app.buildOpts,
                                         registry_, lang::Domain::None);
        profile_ = app.profile;
        for (const auto &kernel : app.kernels)
            hostEff_[kernel.accel] = kernel.cpuEff;
    }

    StreamJob makeJob(const std::string &name) const
    {
        StreamJob job;
        job.name = name;
        job.program = &compiled_;
        job.profile = profile_;
        job.hostEff = hostEff_;
        return job;
    }

    static FaultConfig chaosConfig(uint64_t seed)
    {
        // All three fault classes at 10%, per the chaos-sweep invariant.
        FaultConfig fc;
        fc.seed = seed;
        fc.accelUnavailableRate = 0.1;
        fc.dmaFailureRate = 0.1;
        fc.watchdogRate = 0.1;
        return fc;
    }

    /** Checks the conservation invariants and that the per-job outcomes
     *  agree with the report-level tallies. */
    static void expectConserved(const StreamReport &report)
    {
        EXPECT_EQ(report.completed + report.shed + report.aborted,
                  report.admitted);
        EXPECT_EQ(report.admitted + report.rejected, report.offered);
        int64_t completed = 0, shed = 0, aborted = 0, rejected = 0;
        for (const auto &job : report.jobs) {
            switch (job.outcome) {
              case JobOutcome::Completed: ++completed; break;
              case JobOutcome::Shed: ++shed; break;
              case JobOutcome::Aborted: ++aborted; break;
              case JobOutcome::Rejected: ++rejected; break;
            }
        }
        EXPECT_EQ(completed, report.completed);
        EXPECT_EQ(shed, report.shed);
        EXPECT_EQ(aborted, report.aborted);
        EXPECT_EQ(rejected, report.rejected);
    }

    lower::AcceleratorRegistry registry_;
    lower::CompiledProgram compiled_;
    target::WorkloadProfile profile_;
    std::map<std::string, double> hostEff_;
};

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, ConfigValidationRejectsBadFields)
{
    const SocRuntime runtime;
    StreamConfig good;
    EXPECT_NO_THROW(StreamScheduler(runtime, good));

    StreamConfig bad = good;
    bad.jobs = 0;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.arrival = ArrivalModel::Poisson;
    bad.arrivalRate = 0.0;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.arrival = ArrivalModel::ClosedLoop;
    bad.clients = 0;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.thinkSeconds = -1.0;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.maxPending = -1;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.deadlineFactor = -2.0;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.workers = -1;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
    bad = good;
    bad.faults.dmaFailureRate = 1.5;
    EXPECT_THROW(StreamScheduler(runtime, bad), UserError);
}

TEST_F(StreamFixture, RunRejectsEmptyAndNullTemplates)
{
    const SocRuntime runtime;
    const StreamScheduler scheduler(runtime, StreamConfig{});
    EXPECT_THROW(scheduler.run({}), UserError);
    StreamJob null_job;
    null_job.name = "null";
    EXPECT_THROW(scheduler.run({null_job}), UserError);
}

// ---------------------------------------------------------------------------
// Bit-identity with the sequential runtime at zero fault rates.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, ZeroFaultJobsBitIdenticalToSequentialExecute)
{
    const SocRuntime runtime;
    const auto sequential =
        runtime.execute(compiled_, profile_, {}, hostEff_);

    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 6;
    config.clients = 2; // jobs overlap, time-sharing the backends
    const StreamScheduler scheduler(runtime, config);
    const auto report = scheduler.run({makeJob("brainstimul")});

    EXPECT_EQ(report.completed, 6);
    expectConserved(report);
    for (const auto &job : report.jobs) {
        ASSERT_EQ(job.outcome, JobOutcome::Completed);
        // Exact equality, not near: the stream path prices partitions
        // through the same member functions in the same order, and
        // queueing delay must never leak into the PerfReport.
        EXPECT_EQ(job.result.total.seconds, sequential.total.seconds);
        EXPECT_EQ(job.result.total.joules, sequential.total.joules);
        EXPECT_EQ(job.result.transferSeconds, sequential.transferSeconds);
        EXPECT_EQ(job.result.transferJoules, sequential.transferJoules);
        ASSERT_EQ(job.result.partitions.size(),
                  sequential.partitions.size());
        for (size_t p = 0; p < sequential.partitions.size(); ++p) {
            EXPECT_EQ(job.result.partitions[p].seconds,
                      sequential.partitions[p].seconds);
            EXPECT_EQ(job.result.partitions[p].joules,
                      sequential.partitions[p].joules);
        }
        // Stream latency still includes dispatch/queueing on top.
        EXPECT_GT(job.latencySeconds, job.result.total.seconds);
    }
}

// ---------------------------------------------------------------------------
// Determinism across worker counts and reruns.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, ReportByteIdenticalAcrossWorkersAndReruns)
{
    StreamConfig config;
    config.arrival = ArrivalModel::Poisson;
    config.jobs = 12;
    config.arrivalRate = 10.0;
    config.seed = 0xabc;
    config.faults = chaosConfig(0xabc);
    config.deadlineFactor = 20.0;
    config.deadlinePolicy = DeadlinePolicy::Shed;

    auto run = [&](int workers) {
        StreamConfig c = config;
        c.workers = workers;
        const SocRuntime runtime;
        return StreamScheduler(runtime, c).run({makeJob("brainstimul")});
    };
    const auto serial = run(1);
    const auto pooled = run(4);
    const auto again = run(4);

    EXPECT_EQ(serial.str(), pooled.str());
    EXPECT_EQ(pooled.str(), again.str());
    ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
    for (size_t i = 0; i < serial.jobs.size(); ++i) {
        EXPECT_EQ(serial.jobs[i].outcome, pooled.jobs[i].outcome);
        EXPECT_EQ(serial.jobs[i].arrivalSeconds,
                  pooled.jobs[i].arrivalSeconds);
        EXPECT_EQ(serial.jobs[i].latencySeconds,
                  pooled.jobs[i].latencySeconds);
        EXPECT_EQ(serial.jobs[i].migrations, pooled.jobs[i].migrations);
    }
}

// ---------------------------------------------------------------------------
// Conservation under chaos.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, ConservationHoldsUnderChaosSweep)
{
    for (const uint64_t seed : {1ull, 2ull, 3ull}) {
        for (const ArrivalModel arrival :
             {ArrivalModel::Poisson, ArrivalModel::ClosedLoop}) {
            StreamConfig config;
            config.arrival = arrival;
            config.jobs = 24;
            config.arrivalRate = 50.0;
            config.clients = 4;
            config.seed = seed;
            config.faults = chaosConfig(seed);
            config.deadlineFactor = 4.0;
            config.deadlinePolicy = DeadlinePolicy::Shed;
            config.maxPending = 8;
            const SocRuntime runtime;
            const StreamScheduler scheduler(runtime, config);
            const auto report =
                scheduler.run({makeJob("brainstimul")});
            EXPECT_EQ(report.offered, 24) << toString(arrival);
            expectConserved(report);
            EXPECT_LE(report.p50LatencySeconds,
                      report.p99LatencySeconds);
            EXPECT_LE(report.p99LatencySeconds,
                      report.p999LatencySeconds);
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, AdmissionBoundShedsAndAccountsRejections)
{
    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 16;
    config.clients = 8;
    config.maxPending = 1;
    const SocRuntime runtime;
    const StreamScheduler scheduler(runtime, config);
    const auto report = scheduler.run({makeJob("brainstimul")});

    // Everything beyond the single admitted job arrives at t=0 (zero
    // think time) against a full queue, so it is load-shed at admission.
    EXPECT_EQ(report.offered, 16);
    EXPECT_EQ(report.admitted, 1);
    EXPECT_EQ(report.rejected, 15);
    EXPECT_EQ(report.completed, 1);
    expectConserved(report);
    for (const auto &job : report.jobs) {
        if (job.outcome != JobOutcome::Rejected)
            continue;
        // Rejected jobs never execute: no partitions, no latency.
        EXPECT_TRUE(job.result.partitions.empty());
        EXPECT_EQ(job.finishSeconds, job.arrivalSeconds);
    }
}

// ---------------------------------------------------------------------------
// Deadline policies.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, DeadlinePoliciesContinueShedAbort)
{
    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 4;
    config.clients = 2;
    // Tighter than the dispatch latency, so every job crosses its
    // deadline before its first partition is placed.
    config.deadlineSeconds = 1e-9;

    const SocRuntime runtime;
    config.deadlinePolicy = DeadlinePolicy::Continue;
    const auto keep =
        StreamScheduler(runtime, config).run({makeJob("b")});
    EXPECT_EQ(keep.completed, 4);
    EXPECT_EQ(keep.deadlineMisses, 4);
    for (const auto &job : keep.jobs)
        EXPECT_TRUE(job.missedDeadline);

    config.deadlinePolicy = DeadlinePolicy::Shed;
    const auto shed =
        StreamScheduler(runtime, config).run({makeJob("b")});
    EXPECT_EQ(shed.shed, 4);
    EXPECT_EQ(shed.completed, 0);
    expectConserved(shed);

    config.deadlinePolicy = DeadlinePolicy::Abort;
    const auto abort =
        StreamScheduler(runtime, config).run({makeJob("b")});
    EXPECT_EQ(abort.aborted, 4);
    EXPECT_EQ(abort.completed, 0);
    for (const auto &job : abort.jobs)
        EXPECT_FALSE(job.error.empty());
}

// ---------------------------------------------------------------------------
// Fault isolation: Abort hits one job, the stream continues.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, AbortPolicyFaultAbortsOnlyTheAffectedJob)
{
    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 12;
    config.clients = 3;
    config.seed = 0x5eed;
    config.faults.seed = 0x5eed;
    config.faults.accelUnavailableRate = 0.15;
    config.faults.accelPolicy = DegradationPolicy::Abort;
    const SocRuntime runtime;
    const StreamScheduler scheduler(runtime, config);
    const auto report = scheduler.run({makeJob("brainstimul")});

    // Per-job salted fault streams: some jobs trip the Abort, the rest
    // run to completion — a mid-stream abort never takes down the
    // scheduler or its neighbors.
    EXPECT_GT(report.aborted, 0);
    EXPECT_GT(report.completed, 0);
    expectConserved(report);
    for (const auto &job : report.jobs) {
        if (job.outcome == JobOutcome::Aborted) {
            EXPECT_NE(job.error.find("unavailable"), std::string::npos)
                << job.error;
        } else {
            EXPECT_EQ(job.outcome, JobOutcome::Completed);
            EXPECT_TRUE(job.error.empty());
        }
    }
}

// ---------------------------------------------------------------------------
// Online rescheduling on accelerator outage.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, OutageMigratesInFlightAndQueuedWork)
{
    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 8;
    config.clients = 4; // queue depth behind the tripping partition
    config.seed = 0x5eed;
    config.faults.seed = 0x5eed;
    config.faults.accelUnavailableRate = 1.0; // every home draw fails
    const SocRuntime runtime;
    const StreamScheduler scheduler(runtime, config);
    const auto report = scheduler.run({makeJob("brainstimul")});

    // Every job still finishes: partitions migrate to a compatible
    // backend or degrade to the host instead of failing.
    EXPECT_EQ(report.completed, 8);
    expectConserved(report);
    EXPECT_GT(report.migrations, 0);
    EXPECT_GT(report.reliability.accelFaults, 0);
    int64_t per_job = 0;
    for (const auto &job : report.jobs)
        per_job += job.migrations;
    EXPECT_EQ(per_job, report.migrations);
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST_F(StreamFixture, StreamCountersAdvanceWithTheReport)
{
    const auto before = obs::MetricsRegistry::global().snapshot();
    StreamConfig config;
    config.arrival = ArrivalModel::ClosedLoop;
    config.jobs = 5;
    config.clients = 2;
    const SocRuntime runtime;
    const auto report =
        StreamScheduler(runtime, config).run({makeJob("b")});
    const auto after = obs::MetricsRegistry::global().snapshot();

    EXPECT_EQ(after.counter("soc.stream.offered") -
                  before.counter("soc.stream.offered"),
              report.offered);
    EXPECT_EQ(after.counter("soc.stream.completed") -
                  before.counter("soc.stream.completed"),
              report.completed);
    EXPECT_EQ(after.counter("soc.stream.runs") -
                  before.counter("soc.stream.runs"),
              1);
}

} // namespace
} // namespace polymath
