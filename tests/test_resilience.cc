/**
 * @file
 * Resilience-layer tests: multi-error parser recovery, unregistered-domain
 * degradation to the host CPU, deterministic seeded fault injection,
 * DMA retry/backoff accounting, degradation policies, and the zero-cost
 * guarantee when the fault model is disabled.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/diagnostics.h"
#include "pmlang/parser.h"
#include "soc/fault.h"
#include "soc/soc.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

using soc::DegradationPolicy;
using soc::FaultConfig;
using soc::FaultModel;
using soc::SocRuntime;

// ---------------------------------------------------------------------------
// DiagnosticEngine.
// ---------------------------------------------------------------------------

TEST(Diagnostics, CountsAndFormatsBySeverity)
{
    DiagnosticEngine diag;
    EXPECT_TRUE(diag.empty());
    diag.error("bad thing", SourceLoc{3, 7});
    diag.warning("odd thing");
    diag.note("context");
    EXPECT_EQ(diag.errorCount(), 1u);
    EXPECT_EQ(diag.warningCount(), 1u);
    EXPECT_TRUE(diag.hasErrors());
    EXPECT_NE(diag.str().find("3:7: error: bad thing"), std::string::npos);
    EXPECT_NE(diag.str().find("warning: odd thing"), std::string::npos);
    EXPECT_THROW(diag.throwIfErrors(), UserError);
    diag.clear();
    EXPECT_FALSE(diag.hasErrors());
    diag.warning("only warning");
    EXPECT_NO_THROW(diag.throwIfErrors());
}

// ---------------------------------------------------------------------------
// Parser error recovery.
// ---------------------------------------------------------------------------

TEST(ParserRecovery, OneFileYieldsAllSyntaxErrors)
{
    // Three independent syntax errors in one component: a malformed index
    // declaration, a statement missing '=', and a trailing bad statement.
    const std::string source =
        "main(input float x, output float y) {\n"
        "  index i[0:;\n"
        "  y x + 1;\n"
        "  float z\n"
        "}\n";
    DiagnosticEngine diag;
    lang::parseWithRecovery(source, diag);
    EXPECT_GE(diag.errorCount(), 3u) << diag.str();
    // Every diagnostic carries a usable source location.
    for (const auto &d : diag.diagnostics())
        EXPECT_TRUE(d.loc.valid()) << d.str();
}

TEST(ParserRecovery, PartialProgramSurvivesBadStatement)
{
    const std::string source =
        "main(input float x, output float y) {\n"
        "  float a;\n"
        "  a = $$$;\n" // lexical garbage would not recover; use syntax
        "  y = x;\n"
        "}\n";
    // '$' is a lexical error: the whole parse degrades to one diagnostic.
    DiagnosticEngine lex_diag;
    const auto none = lang::parseWithRecovery(source, lex_diag);
    EXPECT_TRUE(lex_diag.hasErrors());
    EXPECT_TRUE(none.components.empty());

    // A syntactic error instead: surrounding statements still parse.
    const std::string syntactic =
        "main(input float x, output float y) {\n"
        "  float a;\n"
        "  a = ;\n"
        "  y = x;\n"
        "}\n";
    DiagnosticEngine diag;
    const auto prog = lang::parseWithRecovery(syntactic, diag);
    EXPECT_EQ(diag.errorCount(), 1u) << diag.str();
    ASSERT_EQ(prog.components.size(), 1u);
    EXPECT_EQ(prog.components[0].body.size(), 2u); // decl + y = x
}

TEST(ParserRecovery, RecoversAcrossComponents)
{
    const std::string source =
        "broken(input float x { }\n" // missing ')' in the signature
        "fine(input float x, output float y) { y = x; }\n";
    DiagnosticEngine diag;
    const auto prog = lang::parseWithRecovery(source, diag);
    EXPECT_GE(diag.errorCount(), 1u);
    ASSERT_GE(prog.components.size(), 1u);
    EXPECT_EQ(prog.components.back().name, "fine");
}

TEST(ParserRecovery, PlainParseStillThrowsOnFirstError)
{
    EXPECT_THROW(lang::parse("main(output float y) { y = ; y = ; }"),
                 UserError);
}

// ---------------------------------------------------------------------------
// Unregistered-domain degradation in lower::compile.
// ---------------------------------------------------------------------------

TEST(Degradation, UnregisteredDomainFallsBackToHostWithWarning)
{
    auto graph = wl::buildGraph(
        "main(input float x[16], output float y) {"
        " index i[0:15]; y = sum[i](x[i]*x[i]); }");
    lower::AcceleratorRegistry empty;

    // Without a DiagnosticEngine the historical behavior holds.
    EXPECT_THROW(
        lower::compileProgram(*graph, empty, lang::Domain::DA),
        UserError);

    // With one, compilation completes on a host-CPU partition.
    DiagnosticEngine diag;
    const auto compiled =
        lower::compileProgram(*graph, empty, lang::Domain::DA, &diag);
    EXPECT_FALSE(diag.hasErrors());
    EXPECT_GE(diag.warningCount(), 1u);
    ASSERT_FALSE(compiled.partitions.empty());
    for (const auto &partition : compiled.partitions)
        EXPECT_EQ(partition.accel, lower::kHostAccel);

    // The SoC runtime executes the degraded program on the host.
    SocRuntime runtime;
    target::WorkloadProfile profile;
    const auto result = runtime.execute(compiled, profile);
    EXPECT_GT(result.total.seconds, 0.0);
    EXPECT_EQ(result.transferSeconds, 0.0); // no accelerator, no DMA
}

// ---------------------------------------------------------------------------
// SocConfig validation.
// ---------------------------------------------------------------------------

TEST(SocConfigValidate, RejectsNonPositiveAndNegativeFields)
{
    target::SocConfig good = target::socConfig();
    EXPECT_NO_THROW(good.validate());

    target::SocConfig bad = good;
    bad.dmaGBs = 0.0;
    EXPECT_THROW(bad.validate(), UserError);
    bad = good;
    bad.perTransferUs = -1.0;
    EXPECT_THROW(bad.validate(), UserError);
    bad = good;
    bad.hostWatts = 0.0;
    EXPECT_THROW(bad.validate(), UserError);
    bad = good;
    bad.dramPjPerByte = -0.5;
    EXPECT_THROW(bad.validate(), UserError);
    bad = good;
    bad.hostFallbackEff = 0.0;
    EXPECT_THROW(bad.validate(), UserError);
    bad = good;
    bad.hostFallbackEff = 1.5;
    EXPECT_THROW(bad.validate(), UserError);

    // The SocRuntime constructor enforces validation.
    bad = good;
    bad.dmaGBs = -3.0;
    EXPECT_THROW(SocRuntime(target::standardBackends(), bad), UserError);
}

TEST(FaultConfigValidate, RejectsBadRatesAndBudgets)
{
    FaultConfig fc;
    fc.dmaFailureRate = 1.5;
    EXPECT_THROW(FaultModel{fc}, UserError);
    fc.dmaFailureRate = -0.1;
    EXPECT_THROW(FaultModel{fc}, UserError);
    fc.dmaFailureRate = 0.5;
    fc.maxDmaRetries = -1;
    EXPECT_THROW(FaultModel{fc}, UserError);
}

// ---------------------------------------------------------------------------
// Fault injection on the SoC.
// ---------------------------------------------------------------------------

class ResilienceFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto &app = wl::tableIV().front(); // BrainStimul
        registry_ = target::standardRegistry();
        compiled_ = wl::compileBenchmark(app.source, app.buildOpts,
                                         registry_, lang::Domain::None);
        profile_ = app.profile;
        for (const auto &kernel : app.kernels)
            hostEff_[kernel.accel] = kernel.cpuEff;
    }

    static FaultConfig faultyConfig(double rate, uint64_t seed = 42)
    {
        FaultConfig fc;
        fc.seed = seed;
        fc.accelUnavailableRate = rate / 5.0;
        fc.dmaFailureRate = rate;
        fc.watchdogRate = rate / 2.0;
        return fc;
    }

    lower::AcceleratorRegistry registry_;
    lower::CompiledProgram compiled_;
    target::WorkloadProfile profile_;
    std::map<std::string, double> hostEff_;
};

TEST_F(ResilienceFixture, DisabledFaultModelIsBitIdentical)
{
    SocRuntime plain;
    SocRuntime with_model(target::standardBackends(), target::socConfig(),
                          FaultModel{}); // rates all zero => disabled
    const auto a = plain.execute(compiled_, profile_, {}, hostEff_);
    const auto b = with_model.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_EQ(a.total.seconds, b.total.seconds);
    EXPECT_EQ(a.total.joules, b.total.joules);
    EXPECT_EQ(a.transferSeconds, b.transferSeconds);
    EXPECT_EQ(a.transferJoules, b.transferJoules);
    EXPECT_EQ(b.reliability.faultsInjected, 0);
    EXPECT_EQ(b.reliability.hostFallbacks, 0);
    EXPECT_EQ(b.reliability.availability(), 1.0);
}

TEST_F(ResilienceFixture, SameSeedSameReliabilityReport)
{
    SocRuntime a(target::standardBackends(), target::socConfig(),
                 FaultModel(faultyConfig(0.5, 7)));
    SocRuntime b(target::standardBackends(), target::socConfig(),
                 FaultModel(faultyConfig(0.5, 7)));
    const auto ra = a.execute(compiled_, profile_, {}, hostEff_);
    const auto rb = b.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_EQ(ra.total.seconds, rb.total.seconds);
    EXPECT_EQ(ra.total.joules, rb.total.joules);
    EXPECT_EQ(ra.reliability.faultsInjected,
              rb.reliability.faultsInjected);
    EXPECT_EQ(ra.reliability.retriesSpent, rb.reliability.retriesSpent);
    EXPECT_EQ(ra.reliability.hostFallbacks, rb.reliability.hostFallbacks);
    EXPECT_EQ(ra.reliability.events.size(), rb.reliability.events.size());
    EXPECT_EQ(ra.reliability.str(), rb.reliability.str());

    // Repeated execution of the same runtime is also reproducible.
    const auto again = a.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_EQ(ra.total.seconds, again.total.seconds);
    EXPECT_EQ(ra.reliability.str(), again.reliability.str());
}

TEST_F(ResilienceFixture, FaultsInjectOverheadAndReportIt)
{
    SocRuntime faulty(target::standardBackends(), target::socConfig(),
                      FaultModel(faultyConfig(0.5, 7)));
    SocRuntime clean;
    const auto r = faulty.execute(compiled_, profile_, {}, hostEff_);
    const auto base = clean.execute(compiled_, profile_, {}, hostEff_);

    EXPECT_GT(r.reliability.faultsInjected, 0);
    EXPECT_EQ(r.reliability.faultFreeSeconds, base.total.seconds);
    EXPECT_GE(r.total.seconds, base.total.seconds);
    EXPECT_DOUBLE_EQ(r.reliability.actualSeconds, r.total.seconds);
    EXPECT_GE(r.reliability.slowdown(), 1.0);
    EXPECT_LE(r.reliability.availability(), 1.0);
    EXPECT_GE(r.reliability.availability(), 0.0);
}

TEST_F(ResilienceFixture, CertainDmaFailureDegradesEveryPartition)
{
    FaultConfig fc;
    fc.seed = 11;
    fc.dmaFailureRate = 1.0; // every attempt fails => retries then host
    SocRuntime runtime(target::standardBackends(), target::socConfig(),
                       FaultModel(fc));
    const auto r = runtime.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_GT(r.reliability.offloadAttempts, 0);
    EXPECT_EQ(r.reliability.hostFallbacks, r.reliability.offloadAttempts);
    EXPECT_EQ(r.reliability.availability(), 0.0);
    // The retry budget was spent before each fallback.
    EXPECT_EQ(r.reliability.retriesSpent,
              r.reliability.offloadAttempts * fc.maxDmaRetries);
    // Degraded-to-host means no accelerator DMA was charged.
    EXPECT_EQ(r.transferSeconds, 0.0);
    // ... and the result matches a run that never offloads, plus backoff.
    SocRuntime clean;
    const auto host_only =
        runtime.execute(compiled_, profile_, {"<none>"}, hostEff_);
    EXPECT_GT(r.total.seconds, host_only.total.seconds);
}

TEST_F(ResilienceFixture, DegradedFallbackRunsBelowNativeEfficiency)
{
    // A fault-triggered fallback executes the portable host lowering, not
    // the tuned native library, so it must cost strictly more time than
    // both a deliberate host-only run and a fallback at native
    // efficiency (hostFallbackEff = 1).
    FaultConfig fc;
    fc.seed = 7;
    fc.accelUnavailableRate = 1.0; // every partition degrades immediately
    SocRuntime degraded(target::standardBackends(), target::socConfig(),
                        FaultModel(fc));
    auto native_cfg = target::socConfig();
    native_cfg.hostFallbackEff = 1.0;
    SocRuntime native(target::standardBackends(), native_cfg,
                      FaultModel(fc));

    const auto d = degraded.execute(compiled_, profile_, {}, hostEff_);
    const auto n = native.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_EQ(d.reliability.hostFallbacks, d.reliability.offloadAttempts);
    EXPECT_GT(d.total.seconds, n.total.seconds);

    const auto host_only =
        native.execute(compiled_, profile_, {"<none>"}, hostEff_);
    EXPECT_GT(d.total.seconds, host_only.total.seconds);
}

TEST_F(ResilienceFixture, DmaBackoffLatencyIsExponentialAndAccounted)
{
    FaultConfig fc;
    fc.seed = 3;
    fc.dmaFailureRate = 1.0;
    fc.maxDmaRetries = 4;
    fc.dmaRetryBackoffUs = 100.0;
    const FaultModel model(fc);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(0), 100e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(1), 200e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(3), 800e-6);

    // End-to-end: every partition burns the full backoff series, then
    // falls back; the total must exceed the pure-fallback runtime by
    // exactly the deterministic backoff sum. hostFallbackEff = 1 makes
    // the degraded partitions run at native-library efficiency so the
    // only delta left is the backoff latency itself.
    auto cfg = target::socConfig();
    cfg.hostFallbackEff = 1.0;
    SocRuntime runtime(target::standardBackends(), cfg, model);
    const auto r = runtime.execute(compiled_, profile_, {}, hostEff_);
    const auto host_only =
        runtime.execute(compiled_, profile_, {"<none>"}, hostEff_);
    const double backoff_sum =
        (100e-6 + 200e-6 + 400e-6 + 800e-6) *
        static_cast<double>(r.reliability.offloadAttempts);
    const double tol =
        1e-9 * std::max(1.0, host_only.total.seconds) + 1e-12;
    EXPECT_NEAR(r.total.seconds - host_only.total.seconds, backoff_sum,
                tol);
}

TEST(FaultModelBackoff, ExponentialSeriesClampsAtConfiguredCap)
{
    FaultConfig fc;
    fc.dmaRetryBackoffUs = 100.0;
    fc.maxBackoffUs = 400.0;
    const FaultModel model(fc);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(0), 100e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(1), 200e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(2), 400e-6);
    // Past the cap the series is flat — and huge attempt counts must not
    // overflow the shift into a bogus latency.
    EXPECT_DOUBLE_EQ(model.backoffSeconds(3), 400e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(63), 400e-6);
    EXPECT_DOUBLE_EQ(model.backoffSeconds(1000), 400e-6);

    FaultConfig bad;
    bad.maxBackoffUs = -1.0;
    EXPECT_THROW(FaultModel{bad}, UserError);
}

TEST(ReliabilityEvents, LogKeepsFirstEventsAndCountsTheRest)
{
    soc::ReliabilityReport report;
    const size_t overflow = soc::ReliabilityReport::kMaxEvents + 44;
    for (size_t i = 0; i < overflow; ++i) {
        report.addEvent(soc::FaultEvent{soc::FaultClass::DmaFailure,
                                        static_cast<int>(i), "tabla", 1,
                                        false});
    }
    EXPECT_EQ(report.events.size(), soc::ReliabilityReport::kMaxEvents);
    EXPECT_EQ(report.droppedEvents, 44);
    // The bound stays honest in the rendering.
    EXPECT_NE(report.str().find("+44 more events dropped"),
              std::string::npos);

    // Stream-style accumulation merges under the same bound.
    soc::ReliabilityReport other;
    other.addEvent(soc::FaultEvent{});
    other.droppedEvents = 2;
    report += other;
    EXPECT_EQ(report.events.size(), soc::ReliabilityReport::kMaxEvents);
    EXPECT_EQ(report.droppedEvents, 47); // 44 + 1 overflowed + 2 carried
}

TEST_F(ResilienceFixture, AbortPolicyFailsStop)
{
    FaultConfig fc;
    fc.seed = 5;
    fc.dmaFailureRate = 1.0;
    fc.dmaPolicy = DegradationPolicy::Abort;
    SocRuntime runtime(target::standardBackends(), target::socConfig(),
                       FaultModel(fc));
    EXPECT_THROW(runtime.execute(compiled_, profile_, {}, hostEff_), UserError);

    FaultConfig accel;
    accel.seed = 5;
    accel.accelUnavailableRate = 1.0;
    accel.accelPolicy = DegradationPolicy::Abort;
    SocRuntime runtime2(target::standardBackends(), target::socConfig(),
                        FaultModel(accel));
    EXPECT_THROW(runtime2.execute(compiled_, profile_, {}, hostEff_), UserError);
}

TEST_F(ResilienceFixture, WatchdogReexecutionChargesWastedRuns)
{
    FaultConfig fc;
    fc.seed = 9;
    fc.watchdogRate = 1.0; // always fires => re-executes, then degrades
    fc.maxReexecutions = 2;
    SocRuntime runtime(target::standardBackends(), target::socConfig(),
                       FaultModel(fc));
    const auto r = runtime.execute(compiled_, profile_, {}, hostEff_);
    EXPECT_GT(r.reliability.watchdogFaults, 0);
    EXPECT_EQ(r.reliability.hostFallbacks, r.reliability.offloadAttempts);
    EXPECT_EQ(r.reliability.retriesSpent,
              r.reliability.offloadAttempts * fc.maxReexecutions);
    // Wasted accelerator runs make this strictly worse than a clean
    // host-only execution.
    const auto host_only =
        runtime.execute(compiled_, profile_, {"<none>"}, hostEff_);
    EXPECT_GT(r.total.seconds, host_only.total.seconds);
}

TEST_F(ResilienceFixture, RaisingRatesOnlyAddsFaults)
{
    // Stateless threshold draws make fault sets monotone in the rate.
    int64_t prev_faults = -1;
    double prev_seconds = -1.0;
    for (double rate : {0.0, 0.1, 0.3, 0.6, 1.0}) {
        SocRuntime runtime(target::standardBackends(),
                           target::socConfig(),
                           FaultModel(faultyConfig(rate, 21)));
        const auto r = runtime.execute(compiled_, profile_, {}, hostEff_);
        EXPECT_GE(r.reliability.faultsInjected, prev_faults);
        EXPECT_GE(r.total.seconds, prev_seconds);
        prev_faults = r.reliability.faultsInjected;
        prev_seconds = r.total.seconds;
    }
}

} // namespace
} // namespace polymath
