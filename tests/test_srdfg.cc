/**
 * @file
 * srDFG tests: IndexExpr arithmetic, graph construction from PMLang
 * (structure, metadata, recursion, SSA/state versioning), traversal,
 * scalar materialization, and printers.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "interp/interpreter.h"
#include "srdfg/builder.h"
#include "srdfg/expand.h"
#include "srdfg/index_expr.h"
#include "srdfg/printer.h"
#include "srdfg/serialize.h"
#include "srdfg/traversal.h"

namespace polymath::ir {
namespace {

using IE = IndexExpr;

TEST(IndexExpr, EvalArithmetic)
{
    // (i + 1) * h  with h = 10
    const auto e = IE::binary(IE::Kind::Mul,
                              IE::binary(IE::Kind::Add, IE::var(0),
                                         IE::constant(1)),
                              IE::constant(10));
    const int64_t env[] = {3};
    EXPECT_EQ(e.eval(env), 40);
}

TEST(IndexExpr, EvalDivModAndSelect)
{
    // (i / 4) % 2 ? i : -i
    const auto cond = IE::binary(
        IE::Kind::Mod,
        IE::binary(IE::Kind::Div, IE::var(0), IE::constant(4)),
        IE::constant(2));
    const auto e = IE::select(cond, IE::var(0),
                              IE::unary(IE::Kind::Neg, IE::var(0)));
    int64_t env[] = {5};
    EXPECT_EQ(e.eval(env), 5);
    env[0] = 2;
    EXPECT_EQ(e.eval(env), -2);
}

TEST(IndexExpr, DivisionByZeroIsUserError)
{
    const auto e = IE::binary(IE::Kind::Div, IE::var(0), IE::constant(0));
    const int64_t env[] = {1};
    EXPECT_THROW(e.eval(env), UserError);
}

TEST(IndexExpr, ConstDetectionAndVarCount)
{
    EXPECT_TRUE(IE::constant(3).isConst());
    EXPECT_FALSE(IE::var(2).isConst());
    EXPECT_EQ(IE::var(2).varCount(), 3);
    const auto e = IE::binary(IE::Kind::Add, IE::var(1), IE::constant(4));
    EXPECT_EQ(e.varCount(), 2);
}

TEST(IndexExpr, Remapping)
{
    const auto e = IE::binary(IE::Kind::Add, IE::var(0), IE::var(1));
    const int map[] = {2, 0};
    const auto r = e.remapped(map);
    const int64_t env[] = {7, 0, 5};
    EXPECT_EQ(r.eval(env), 12);
}

TEST(IndexExpr, IdentityVarDetection)
{
    EXPECT_TRUE(IE::var(3).isIdentityVar(3));
    EXPECT_FALSE(IE::var(3).isIdentityVar(2));
    EXPECT_FALSE(IE::constant(3).isIdentityVar(3));
}

TEST(IndexExpr, Rendering)
{
    const std::vector<std::string> names = {"i", "j"};
    const auto e = IE::binary(IE::Kind::Mul,
                              IE::binary(IE::Kind::Add, IE::var(0),
                                         IE::constant(1)),
                              IE::var(1));
    EXPECT_EQ(e.str(names), "((i + 1)*j)");
}

// --- builder ---------------------------------------------------------------

TEST(Builder, MvmulStructureAndMetadata)
{
    auto g = compileToSrdfg(R"(
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
main(input float A[2][3], input float x[3], output float y[2]) {
    DA: mvmul(A, x, y);
}
)");
    ASSERT_EQ(g->liveNodeCount(), 1);
    const Node *call = g->node(0);
    ASSERT_EQ(call->kind, NodeKind::Component);
    EXPECT_EQ(call->op, ir::Op::intern("mvmul"));
    EXPECT_EQ(call->domain, lang::Domain::DA);
    ASSERT_NE(call->subgraph, nullptr);
    EXPECT_EQ(call->subgraph->domain, lang::Domain::DA);

    // Boundary metadata carries the type modifiers.
    EXPECT_EQ(g->value(g->inputs[0]).md.kind, EdgeKind::Input);
    EXPECT_EQ(g->value(g->inputs[0]).md.shape, (Shape{2, 3}));
    EXPECT_EQ(g->value(g->outputs[0]).md.kind, EdgeKind::Output);
    EXPECT_EQ(g->value(g->outputs[0]).md.name, "y");

    // Inner granularity: one mul map + one sum reduce (store fused).
    const Graph &sub = *call->subgraph;
    int muls = 0;
    int reduces = 0;
    for (const auto &node : sub.nodePool()) {
        if (!node.live())
            continue;
        muls += node.kind == NodeKind::Map && node.op == ir::OpCode::Mul;
        reduces += node.kind == NodeKind::Reduce;
    }
    EXPECT_EQ(muls, 1);
    EXPECT_EQ(reduces, 1);
    EXPECT_EQ(recursionDepth(*g), 2);
}

TEST(Builder, ScalarOpCountIsExact)
{
    auto g = compileToSrdfg(R"(
main(input float A[4][5], input float x[5], output float y[4]) {
    index i[0:4], j[0:3];
    y[j] = sum[i](A[j][i]*x[i]);
}
)");
    // 20 multiplies + 4*(5-1) adds = 36 (the fused store is free).
    EXPECT_EQ(g->scalarOpCount(), 36);
}

TEST(Builder, NestedReduceDomainsAreMinimal)
{
    auto g = compileToSrdfg(R"(
main(input float w[3], input float x[8][3], input float y[8],
     output float gr[3]) {
    index n[0:7], d[0:2], j[0:2];
    gr[j] = sum[n]((sigmoid(sum[d](w[d]*x[n][d])) - y[n]) * x[n][j]);
}
)");
    // Inner dot product must iterate (n, d) only — not j. Exact count:
    // inner mul 24 + inner sum 8*2=16 + sigmoid 8 + sub 8 + outer mul 24
    // + outer sum 3*7=21 = 101.
    EXPECT_EQ(g->scalarOpCount(), 101);
}

TEST(Builder, StateMakesCycleThroughVersions)
{
    auto g = compileToSrdfg(R"(
main(state float acc[2], input float x[2]) {
    index i[0:1];
    acc[i] = acc[i] + x[i];
}
)");
    // State appears as an input and (a new version) as an output.
    ASSERT_EQ(g->inputs.size(), 2u);
    ASSERT_EQ(g->outputs.size(), 1u);
    EXPECT_EQ(g->value(g->inputs[0]).md.kind, EdgeKind::State);
    EXPECT_EQ(g->value(g->outputs[0]).md.kind, EdgeKind::State);
    EXPECT_EQ(g->value(g->outputs[0]).md.name, "acc");
    EXPECT_NE(g->outputs[0], g->inputs[0]); // SSA: new version
}

TEST(Builder, ParamConstsFoldIntoIndexArithmetic)
{
    BuildOptions opts;
    opts.paramConsts["stride"] = 3;
    auto g = compileToSrdfg(R"(
main(input float x[12], param int stride, output float y[4]) {
    index i[0:3];
    y[i] = x[i*stride];
}
)",
                            opts);
    // The param is compile-time: not a runtime input.
    EXPECT_EQ(g->inputs.size(), 1u);
    auto out = interp::evaluate(
        *g, {{"x", Tensor::vec({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})}});
    EXPECT_EQ(out.at("y").at(int64_t{2}), 6.0);
}

TEST(Builder, MissingParamConstIsUserError)
{
    EXPECT_THROW(compileToSrdfg(R"(
main(input float x[12], param int stride, output float y[4]) {
    index i[0:3];
    y[i] = x[i*stride];
}
)"),
                 UserError);
}

TEST(Builder, SymbolicDimMismatchIsUserError)
{
    EXPECT_THROW(compileToSrdfg(R"(
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
main(input float A[2][3], input float x[4], output float y[2]) {
    DA: mvmul(A, x, y);
}
)"),
                 UserError);
}

TEST(Builder, EachInstantiationGetsItsOwnSubgraph)
{
    auto g = compileToSrdfg(R"(
twice(input float x[n], output float y[n]) {
    index i[0:n-1];
    y[i] = x[i]*2;
}
main(input float a[2], input float b[5], output float c[2],
     output float d[5]) {
    DSP: twice(a, c);
    DSP: twice(b, d);
}
)");
    std::vector<const Node *> calls;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.kind == NodeKind::Component)
            calls.push_back(&node);
    }
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_NE(calls[0]->subgraph.get(), calls[1]->subgraph.get());
    // Context-sensitive shapes: 2 vs 5.
    EXPECT_EQ(calls[0]->subgraph->value(calls[0]->subgraph->inputs[0])
                  .md.shape,
              (Shape{2}));
    EXPECT_EQ(calls[1]->subgraph->value(calls[1]->subgraph->inputs[0])
                  .md.shape,
              (Shape{5}));
}

TEST(Builder, PartialWritesChainThroughBase)
{
    auto g = compileToSrdfg(R"(
main(input float x[4], output float y[8]) {
    index i[0:3];
    y[2*i] = x[i];
    y[2*i+1] = -x[i];
}
)");
    auto out = interp::evaluate(*g, {{"x", Tensor::vec({1, 2, 3, 4})}});
    const auto &y = out.at("y");
    EXPECT_EQ(y.at(int64_t{0}), 1.0);
    EXPECT_EQ(y.at(int64_t{1}), -1.0);
    EXPECT_EQ(y.at(int64_t{6}), 4.0);
    EXPECT_EQ(y.at(int64_t{7}), -4.0);
}

TEST(Builder, EdgesViewMatchesPaperForm)
{
    auto g = compileToSrdfg(R"(
main(input float x[3], output float y[3]) {
    index i[0:2];
    y[i] = x[i] + 1;
}
)");
    const auto edges = g->edges();
    // x -> add, const -> add, add(out y) -> boundary.
    bool input_edge = false;
    bool boundary_edge = false;
    for (const auto &e : edges) {
        input_edge |= e.src == -1 && e.dst >= 0;
        boundary_edge |= e.dst == -1 && e.src >= 0;
    }
    EXPECT_TRUE(input_edge);
    EXPECT_TRUE(boundary_edge);
}

TEST(Builder, ValidateAcceptsAllWorkloadStructures)
{
    // Exercised heavily elsewhere; spot-check validate() rejects a
    // corrupted graph.
    auto g = compileToSrdfg("main(input float x[2], output float y[2]) {"
                            " index i[0:1]; y[i] = x[i]; }");
    g->validate();
    for (auto &node : g->nodePool()) {
        if (!node.live() || g->ins(node).empty() ||
            !g->ins(node)[0].hasCoords()) {
            continue;
        }
        // Corrupt the first input's coord span: widen it past the rank it
        // was interned with (and potentially past the arena).
        Access broken = g->ins(node)[0];
        broken.coords.len += 7;
        g->setInput(node, 0, broken);
        break;
    }
    EXPECT_THROW(g->validate(), InternalError);
}

TEST(Builder, RejectsEmptyIndexRange)
{
    EXPECT_THROW(compileToSrdfg("main(input float x[4], output float y) {"
                                " index i[3:1]; y = sum[i](x[i]); }"),
                 UserError);
}

TEST(Builder, EntryDimsMustBeCompileTime)
{
    // Symbolic dims are fine on inner components but the entry must be
    // concrete.
    EXPECT_THROW(compileToSrdfg(
                     "main(input float x[n], output float y) {"
                     " y = x[0]; }"),
                 UserError);
}

TEST(Builder, AlternativeEntryComponent)
{
    BuildOptions opts;
    opts.entry = "affine";
    auto g = compileToSrdfg(R"(
affine(input float x[4], param float a, output float y[4]) {
    index i[0:3];
    y[i] = x[i]*a;
}
main(input float x[4], param float a, output float y[4]) {
    DA: affine(x, a, y);
}
)",
                            opts);
    EXPECT_EQ(g->name, "affine");
    auto out = interp::evaluate(*g, {{"x", Tensor::vec({1, 2, 3, 4})},
                                     {"a", Tensor::scalar(3.0)}});
    EXPECT_EQ(out.at("y").at(int64_t{2}), 9.0);
}

TEST(Builder, DomainInheritanceAcrossNesting)
{
    auto g = compileToSrdfg(R"(
inner(input float x[2], output float y[2]) {
    index i[0:1];
    y[i] = x[i]*2;
}
outer(input float x[2], output float y[2]) {
    float t[2];
    inner(x, t);
    index i[0:1];
    y[i] = t[i] + 1;
}
main(input float a[2], output float b[2]) {
    DSP: outer(a, b);
}
)");
    // Every node at every level inherits DSP from the annotated call.
    ir::forEachNodeRecursive(
        static_cast<const Graph &>(*g),
        [](const Graph &, const Node &node) {
            EXPECT_EQ(node.domain, lang::Domain::DSP) << node.op;
        });
}

// --- traversal --------------------------------------------------------------

TEST(Traversal, TopoOrderRespectsDataflow)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    const auto order = topoOrder(*g);
    std::map<NodeId, size_t> position;
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    for (const auto &node : g->nodePool()) {
        if (!node.live())
            continue;
        for (const auto &in : g->ins(node)) {
            if (in.isIndexOperand())
                continue;
            const auto producer = g->value(in.value).producer;
            if (producer >= 0)
                EXPECT_LT(position[producer], position[node.id]);
        }
    }
}

TEST(Traversal, DeadValuesFindsOrphans)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float unused[2];
    unused[i] = x[i] * 3;
    y[i] = x[i];
}
)");
    EXPECT_FALSE(deadValues(*g).empty());
}

// --- scalar materialization --------------------------------------------------

TEST(Expand, MapMaterializationMatchesNodeSemantics)
{
    auto g = compileToSrdfg("main(input float x[3], input float z[3],"
                            " output float y[3]) {"
                            " index i[0:2]; y[i] = x[i]*z[i]; }");
    const Node *mul = nullptr;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.op == ir::OpCode::Mul)
            mul = &node;
    }
    ASSERT_NE(mul, nullptr);
    auto scalar = materializeScalar(*g, *mul);
    // 3 multiplies + 3 scatter stores.
    EXPECT_EQ(scalar->liveNodeCount(), 6);

    interp::Interpreter interp(*scalar);
    interp.setInput("x", Tensor::vec({1, 2, 3}));
    interp.setInput("z", Tensor::vec({4, 5, 6}));
    interp.run();
    const auto &out_name =
        scalar->value(scalar->outputs[0]).md.name;
    EXPECT_EQ(interp.output(out_name).at(int64_t{2}), 18.0);
}

TEST(Expand, ReduceMaterializationFoldsCombinerChain)
{
    auto g = compileToSrdfg("main(input float x[4], output float s) {"
                            " index i[0:3]; s = sum[i](x[i]); }");
    const Node *red = nullptr;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.kind == NodeKind::Reduce)
            red = &node;
    }
    ASSERT_NE(red, nullptr);
    auto scalar = materializeScalar(*g, *red);
    interp::Interpreter interp(*scalar);
    interp.setInput("x", Tensor::vec({1, 2, 3, 4}));
    interp.run();
    const auto &name = scalar->value(scalar->outputs[0]).md.name;
    EXPECT_EQ(interp.output(name).scalarValue(), 10.0);
}

TEST(Expand, BudgetIsEnforced)
{
    auto g = compileToSrdfg("main(input float x[100], output float y[100]) {"
                            " index i[0:99]; y[i] = x[i]+1; }");
    const Node *add = nullptr;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.op == ir::OpCode::Add)
            add = &node;
    }
    ASSERT_NE(add, nullptr);
    EXPECT_THROW(materializeScalar(*g, *add, 10), UserError);
}

TEST(Expand, CombinerOpMapping)
{
    EXPECT_EQ(combinerOp(ir::OpCode::Sum), ir::Op(ir::OpCode::Add));
    EXPECT_EQ(combinerOp(ir::OpCode::Prod), ir::Op(ir::OpCode::Mul));
    EXPECT_EQ(combinerOp(ir::OpCode::Min), ir::Op(ir::OpCode::Min));
    EXPECT_THROW(combinerOp(ir::Op::intern("mymin")), UserError);
}

// --- use lists ---------------------------------------------------------------

// From-scratch recomputation of the use multiset of one value, the
// reference the incremental cache must agree with.
std::vector<NodeId>
rawUses(const Graph &g, ValueId v)
{
    std::vector<NodeId> out;
    for (const auto &node : g.nodePool()) {
        if (!node.live())
            continue;
        for (const auto &in : g.ins(node)) {
            if (in.value == v)
                out.push_back(node.id);
        }
        if (node.base == v)
            out.push_back(node.id);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<NodeId>
sortedUses(const Graph &g, ValueId v)
{
    const auto span = g.uses(v);
    std::vector<NodeId> out(span.begin(), span.end());
    std::sort(out.begin(), out.end());
    return out;
}

TEST(UseLists, OneEntryPerReferencingAccess)
{
    auto g = compileToSrdfg("main(input float x[2], output float y[2]) {"
                            " index i[0:1]; y[i] = x[i] + x[i]; }");
    // The add references x twice, so its node appears twice in x's list.
    const ValueId x = g->findValueByName("x");
    ASSERT_GE(x, 0);
    EXPECT_EQ(g->uses(x).size(), 2u);
    EXPECT_TRUE(g->usesCached());
    for (const auto &v : g->values)
        EXPECT_EQ(sortedUses(*g, v.id), rawUses(*g, v.id));
    g->validate();
}

TEST(UseLists, EraseNodeMaintainsCacheIncrementally)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    const ValueId a = g->findValueByName("a");
    ASSERT_GE(a, 0);
    (void)g->uses(a); // build the cache
    ASSERT_TRUE(g->usesCached());

    const NodeId sub = g->value(g->findValueByName("y")).producer;
    ASSERT_GE(sub, 0);
    g->eraseNode(sub);

    // Still cached — eraseNode maintains the lists instead of dropping
    // them — and still consistent with a recomputation.
    EXPECT_TRUE(g->usesCached());
    for (const auto &v : g->values)
        EXPECT_EQ(sortedUses(*g, v.id), rawUses(*g, v.id));
}

TEST(UseLists, MutationHelpersKeepCacheLive)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    const ValueId a = g->findValueByName("a");
    const ValueId b = g->findValueByName("b");
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    (void)g->uses(a);
    ASSERT_TRUE(g->usesCached());

    // Repoint the subtract's b-operand at a through setInput: b loses a
    // user, a gains one, and the cache never has to be rebuilt.
    Node *sub = g->node(g->value(g->findValueByName("y")).producer);
    ASSERT_NE(sub, nullptr);
    const size_t uses_of_a = g->uses(a).size();
    const size_t uses_of_b = g->uses(b).size();
    const auto sub_ins = g->ins(*sub);
    for (size_t slot = 0; slot < sub_ins.size(); ++slot) {
        if (sub_ins[slot].value == b)
            g->setInput(*sub, slot, Access{a, sub_ins[slot].coords});
    }
    EXPECT_TRUE(g->usesCached());
    EXPECT_EQ(g->uses(a).size(), uses_of_a + 1);
    EXPECT_EQ(g->uses(b).size(), uses_of_b - 1);
    for (const auto &v : g->values)
        EXPECT_EQ(sortedUses(*g, v.id), rawUses(*g, v.id));
    g->validate();
}

TEST(UseLists, TouchUsesInvalidatesAfterRawSurgery)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    const ValueId a = g->findValueByName("a");
    const ValueId b = g->findValueByName("b");
    (void)g->uses(a);
    ASSERT_TRUE(g->usesCached());

    // Raw write past the helpers, then the escape hatch: the cache is
    // dropped and the next uses() call rebuilds a consistent view.
    Node *sub = g->node(g->value(g->findValueByName("y")).producer);
    ASSERT_NE(sub, nullptr);
    for (auto &in : g->insMut(*sub)) {
        if (in.value == b)
            in.value = a;
    }
    g->touchUses();
    EXPECT_FALSE(g->usesCached());
    for (const auto &v : g->values)
        EXPECT_EQ(sortedUses(*g, v.id), rawUses(*g, v.id));
    EXPECT_TRUE(g->usesCached());
    g->validate();
}

TEST(UseLists, ValidateCatchesStaleCache)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    const ValueId a = g->findValueByName("a");
    const ValueId b = g->findValueByName("b");
    (void)g->uses(a);
    ASSERT_TRUE(g->usesCached());

    // The same raw write with no touchUses(): the graph itself is still
    // well-formed, so only the use-cache cross-check can catch it.
    Node *sub = g->node(g->value(g->findValueByName("y")).producer);
    ASSERT_NE(sub, nullptr);
    for (auto &in : g->insMut(*sub)) {
        if (in.value == b)
            in.value = a;
    }
    EXPECT_THROW(g->validate(), InternalError);
}

TEST(UseLists, ConsumersAgreesWithUsesCache)
{
    auto g = compileToSrdfg(R"(
main(input float x[2], output float y[2]) {
    index i[0:1];
    float a[2], b[2];
    a[i] = x[i] + x[i];
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    // From-scratch path first (no cache yet).
    ASSERT_FALSE(g->usesCached());
    const auto cold = g->consumers();

    // Warm the incremental cache, then derive consumers from it. The two
    // views must agree cell by cell, and both must match a raw walk:
    // every cell sorted ascending by node id, one entry per referencing
    // access.
    (void)g->uses(g->findValueByName("a"));
    ASSERT_TRUE(g->usesCached());
    const auto warm = g->consumers();
    ASSERT_EQ(cold.size(), warm.size());
    for (const auto &v : g->values) {
        const auto idx = static_cast<size_t>(v.id);
        EXPECT_EQ(cold[idx], warm[idx]) << "value " << v.id;
        EXPECT_EQ(warm[idx], rawUses(*g, v.id)) << "value " << v.id;
        EXPECT_EQ(sortedUses(*g, v.id), rawUses(*g, v.id))
            << "value " << v.id;
    }
}

// --- flat storage ------------------------------------------------------------

TEST(Storage, CompactIsInvisibleToPrintAndSerialize)
{
    auto g = compileToSrdfg(R"(
main(input float x[4], output float y[4]) {
    index i[0:3];
    float a[4], b[4];
    a[i] = x[i] + 1;
    b[i] = a[i] * 2;
    y[i] = b[i] - a[i];
}
)");
    // Tombstone a node so the arenas hold garbage worth retiring.
    const NodeId dead = g->value(g->findValueByName("b")).producer;
    ASSERT_GE(dead, 0);
    g->eraseNode(dead);

    const std::string text_before = printGraph(*g);
    const std::string json_before = toJson(*g);
    const size_t arena_before = g->arenaBytes();

    g->compact();
    g->validate();

    // Ids are stable across compact(), so both renderings must be
    // byte-identical; only the arena footprint may shrink.
    EXPECT_EQ(printGraph(*g), text_before);
    EXPECT_EQ(toJson(*g), json_before);
    EXPECT_LE(g->arenaBytes(), arena_before);
}

TEST(Storage, CloneOfCloneIsByteIdentical)
{
    auto g = compileToSrdfg(R"(
inner(input float v[3], output float w[3]) {
    index i[0:2];
    w[i] = v[i] * v[i];
}
main(input float x[3], output float y[3]) {
    inner(x, y);
}
)");
    const auto c1 = g->clone();
    const auto c2 = c1->clone();
    EXPECT_EQ(toJson(*c1), toJson(*g));
    EXPECT_EQ(toJson(*c2), toJson(*g));
    EXPECT_EQ(printGraph(*c2), printGraph(*g));

    // The clone is deep: growing the copy leaves the original untouched.
    const int64_t live_before = g->liveNodeCount();
    Node &extra = *c2->node(c2->addNode(NodeKind::Constant, OpCode::Const));
    extra.cval = 7.0;
    EdgeMeta md;
    md.dtype = DType::Float;
    md.kind = EdgeKind::Internal;
    c2->addOutput(extra, Access{c2->addValue(md, extra.id), {}});
    EXPECT_EQ(g->liveNodeCount(), live_before);
    EXPECT_EQ(c2->liveNodeCount(), live_before + 1);
    EXPECT_EQ(toJson(*g), toJson(*c1));
}

TEST(Storage, ArenaBytesTracksPools)
{
    auto g = compileToSrdfg(R"(
main(input float x[4][4], output float y[4][4]) {
    index i[0:3], j[0:3];
    y[i][j] = x[i][j] + x[j][i];
}
)");
    // A graph with coords, accesses, and domain vars must report a
    // nonzero arena footprint, and a compact() of a garbage-free graph
    // must not grow it.
    const size_t before = g->arenaBytes();
    EXPECT_GT(before, 0u);
    g->compact();
    EXPECT_LE(g->arenaBytes(), before);
    g->validate();
}

// --- printing ----------------------------------------------------------------

TEST(Printer, TextShowsAllLevelsAndMetadata)
{
    auto g = compileToSrdfg(R"(
inner(input float x[2], output float y[2]) {
    index i[0:1];
    y[i] = x[i]*2;
}
main(input float a[2], output float b[2]) {
    DSP: inner(a, b);
}
)");
    const auto text = printGraph(*g);
    EXPECT_NE(text.find("graph main"), std::string::npos);
    EXPECT_NE(text.find("graph inner <DSP>"), std::string::npos);
    EXPECT_NE(text.find("in  input float a[2]"), std::string::npos);
    EXPECT_NE(text.find("mul"), std::string::npos);

    const auto depth_limited = printGraph(*g, PrintOptions{1, true});
    EXPECT_EQ(depth_limited.find("graph inner"), std::string::npos);
}

TEST(Printer, MetadataCanBeSuppressed)
{
    auto g = compileToSrdfg("main(input float x[2], output float y[2]) {"
                            " index i[0:1]; y[i] = x[i]+1; }");
    PrintOptions opts;
    opts.showMetadata = false;
    const auto text = printGraph(*g, opts);
    EXPECT_EQ(text.find("in  input"), std::string::npos);
    EXPECT_NE(text.find("add"), std::string::npos);
}

TEST(Printer, DotOutputIsWellFormed)
{
    auto g = compileToSrdfg("main(input float x[2], output float y[2]) {"
                            " index i[0:1]; y[i] = x[i]+1; }");
    const auto dot = toDot(*g);
    EXPECT_EQ(dot.find("digraph"), 0u);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Printer, StatsSummary)
{
    auto g = compileToSrdfg("main(input float x[2], output float y[2]) {"
                            " index i[0:1]; y[i] = x[i]+1; }");
    const auto stats = graphStats(*g);
    EXPECT_NE(stats.find("depth=1"), std::string::npos);
    EXPECT_NE(stats.find("scalar_ops=2"), std::string::npos);
}

} // namespace
} // namespace polymath::ir
