/**
 * @file
 * Tests for the high-fidelity simulation engines (the trace-driven
 * Graphicionado pipeline and the TABLA list scheduler) and for srDFG JSON
 * serialization.
 */
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "core/rng.h"
#include "srdfg/builder.h"
#include "srdfg/printer.h"
#include "srdfg/serialize.h"
#include "targets/common/backend.h"
#include "targets/graphicionado/pipeline_sim.h"
#include "targets/deco/chain_mapper.h"
#include "targets/tabla/scheduler.h"
#include "targets/vta/tiler.h"
#include "workloads/datasets.h"
#include "workloads/programs.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

// --- Graphicionado trace simulator ------------------------------------------

TEST(TraceSim, DeterministicAndCountsEdges)
{
    const auto graph = wl::rmatGraph(1 << 12, 1 << 15, 99);
    target::TraceConfig config;
    const auto a = target::simulateEdgeStream(graph.edgeList,
                                              graph.vertices, 4, config);
    const auto b = target::simulateEdgeStream(graph.edgeList,
                                              graph.vertices, 4, config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.bankConflicts, b.bankConflicts);
    EXPECT_EQ(a.edgesProcessed, graph.edges() * 4);
}

TEST(TraceSim, ConflictFreeTraceHitsPeakThroughput)
{
    // Destinations strided across banks: zero conflicts, 1 edge per pipe
    // per cycle.
    target::TraceConfig config;
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (int32_t i = 0; i < 8192; ++i)
        edges.push_back({0, i % (config.pipes * config.banksPerPipe)});
    const auto r =
        target::simulateEdgeStream(edges, 1 << 16, 1, config);
    EXPECT_EQ(r.bankConflicts, 0);
    // Sweep cycles ~ edges / pipes (+ apply phase).
    EXPECT_LE(r.cycles,
              static_cast<int64_t>(edges.size()) / config.pipes +
                  (int64_t{1} << 16) / config.pipes + 16);
}

TEST(TraceSim, AllSameBankSerializesButCoalescesSameVertex)
{
    target::TraceConfig config;
    const int banks = config.pipes * config.banksPerPipe;

    // Same bank, distinct vertices: every group serializes pipes-1 edges.
    std::vector<std::pair<int32_t, int32_t>> conflicting;
    for (int32_t i = 0; i < 800; ++i)
        conflicting.push_back({0, static_cast<int32_t>((i % 7) * banks)});
    const auto serial = target::simulateEdgeStream(conflicting, 1 << 12, 1,
                                                   config);
    EXPECT_GT(serial.bankConflicts, 500);

    // Same vertex everywhere: the atomic-update unit coalesces.
    std::vector<std::pair<int32_t, int32_t>> hub(
        800, {0, 42});
    const auto coalesced =
        target::simulateEdgeStream(hub, 1 << 12, 1, config);
    EXPECT_EQ(coalesced.bankConflicts, 0);
    EXPECT_LT(coalesced.cycles, serial.cycles);
}

TEST(TraceSim, ScratchpadOverflowCostsMisses)
{
    const auto graph = wl::rmatGraph(1 << 10, 1 << 13, 7);
    target::TraceConfig config;
    config.scratchpadBytes = 1 << 20; // fits
    const auto resident = target::simulateEdgeStream(
        graph.edgeList, graph.vertices, 1, config);
    EXPECT_TRUE(resident.scratchpadResident);
    EXPECT_EQ(resident.vertexMisses, 0);

    config.scratchpadBytes = 1 << 10; // does not fit
    const auto missing = target::simulateEdgeStream(
        graph.edgeList, graph.vertices, 1, config);
    EXPECT_FALSE(missing.scratchpadResident);
    EXPECT_GT(missing.vertexMisses, 0);
    EXPECT_GT(missing.cycles, resident.cycles);
    EXPECT_GT(missing.dramBytes, resident.dramBytes);
}

TEST(TraceSim, WithinBandOfAnalyticModel)
{
    const auto &bench = wl::benchmarkById("Wiki-BFS");
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto *gcn = target::findBackend(backends, "Graphicionado");
    const auto compiled = wl::compileBenchmark(
        bench.source, bench.buildOpts, registry, bench.domain);
    const auto analytic =
        gcn->simulate(compiled.partitions.front(), bench.profile);

    const auto graph =
        wl::rmatGraph(bench.profile.vertices, bench.profile.edges, 1234);
    auto config = target::TraceConfig::fromMachine(gcn->machine());
    const auto trace = target::simulateEdgeStream(
        graph.edgeList, graph.vertices, bench.profile.invocations, config);
    const double ratio =
        trace.toReport(config).seconds / analytic.seconds;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.5);
}

// --- TABLA list scheduler -----------------------------------------------------

lower::Partition
chain(int64_t n, int64_t flops_each)
{
    lower::Partition p;
    for (int64_t i = 0; i < n; ++i) {
        lower::IrFragment f;
        f.opcode = "k" + std::to_string(i);
        f.flops = flops_each;
        lower::TensorArg in;
        in.name = "t" + std::to_string(i);
        in.shape = Shape{64};
        lower::TensorArg out;
        out.name = "t" + std::to_string(i + 1);
        out.shape = Shape{64};
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    return p;
}

TEST(Scheduler, ChainSerializesIndependentWorkParallelizes)
{
    target::ScheduleConfig config;
    config.pes = 64;
    const auto serial = target::listSchedule(chain(4, 6400), config);

    lower::Partition parallel;
    for (int i = 0; i < 4; ++i) {
        lower::IrFragment f;
        f.opcode = "k";
        f.flops = 6400;
        lower::TensorArg in;
        in.name = "x" + std::to_string(i);
        in.shape = Shape{64};
        lower::TensorArg out;
        out.name = "y" + std::to_string(i);
        out.shape = Shape{64};
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        parallel.fragments.push_back(std::move(f));
    }
    const auto wide = target::listSchedule(parallel, config);
    EXPECT_LT(wide.cycles, serial.cycles);
    EXPECT_GT(wide.peOccupancy, serial.peOccupancy * 0.9);
}

TEST(Scheduler, MakespanRespectsDependencies)
{
    target::ScheduleConfig config;
    const auto result = target::listSchedule(chain(5, 1000), config);
    ASSERT_EQ(result.fragments.size(), 5u);
    for (size_t i = 1; i < result.fragments.size(); ++i) {
        EXPECT_GE(result.fragments[i].startCycle,
                  result.fragments[i - 1].finishCycle);
    }
    EXPECT_GT(result.cycles, 0);
    EXPECT_LE(result.peOccupancy, 1.0 + 1e-9);
}

TEST(Scheduler, BusChargesEachTensorOnce)
{
    lower::Partition p;
    for (int i = 0; i < 3; ++i) {
        lower::IrFragment f;
        f.opcode = "k";
        f.flops = 100;
        lower::TensorArg shared;
        shared.name = "x"; // same big operand three times
        shared.shape = Shape{100000};
        f.inputs.push_back(shared);
        lower::TensorArg out;
        out.name = "y" + std::to_string(i);
        out.shape = Shape{1};
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    target::ScheduleConfig config;
    const auto r = target::listSchedule(p, config);
    // 100000 words / 64 per cycle = 1563 cycles, charged once.
    EXPECT_LT(r.busCycles, 2000);
}

TEST(Scheduler, RealWorkloadSchedulesAndBoundsAnalytic)
{
    const auto registry = target::standardRegistry();
    const auto &bench = wl::benchmarkById("MovieL-100K");
    const auto compiled = wl::compileBenchmark(
        bench.source, bench.buildOpts, registry, bench.domain);
    target::ScheduleConfig config;
    const auto r =
        target::listSchedule(compiled.partitions.front(), config);
    EXPECT_GT(r.cycles, 0);
    EXPECT_GT(r.fragments.size(), 5u);
    EXPECT_FALSE(r.str().empty());
}

// --- DECO chain mapper -----------------------------------------------------------

TEST(ChainMapper, FusesLinearElementwisePipelines)
{
    // a -> mul -> add -> sigmoid over the same element count: one chain.
    lower::Partition p;
    auto frag = [](const char *op, const char *in, const char *out,
                   int64_t elems) {
        lower::IrFragment f;
        f.opcode = op;
        f.flops = elems;
        f.attrs["dim0"] = elems;
        lower::TensorArg a;
        a.name = in;
        lower::TensorArg b;
        b.name = out;
        f.inputs.push_back(a);
        f.outputs.push_back(b);
        return f;
    };
    p.fragments.push_back(frag("mul", "x", "t1", 512));
    p.fragments.push_back(frag("add", "t1", "t2", 512));
    p.fragments.push_back(frag("sigmoid", "t2", "y", 512));
    const auto map = target::mapChains(p, {});
    ASSERT_EQ(map.chains.size(), 1u);
    EXPECT_EQ(map.chains[0].ops.size(), 3u);
    EXPECT_EQ(map.waves, 1);
    // II=1: ~512 cycles regardless of chain depth.
    EXPECT_LE(map.cycles, 512);
}

TEST(ChainMapper, DifferentExtentsBreakChains)
{
    lower::Partition p;
    auto frag = [](const char *in, const char *out, int64_t elems) {
        lower::IrFragment f;
        f.opcode = "k";
        f.flops = elems;
        f.attrs["dim0"] = elems;
        lower::TensorArg a;
        a.name = in;
        lower::TensorArg b;
        b.name = out;
        f.inputs.push_back(a);
        f.outputs.push_back(b);
        return f;
    };
    p.fragments.push_back(frag("x", "t", 512));
    p.fragments.push_back(frag("t", "y", 64)); // reduction-like shrink
    const auto map = target::mapChains(p, {});
    EXPECT_EQ(map.chains.size(), 2u);
    EXPECT_EQ(map.waves, 2);
}

TEST(ChainMapper, RealDspWorkloadsMapCompletely)
{
    const auto registry = target::standardRegistry();
    for (const char *id : {"FFT-8192", "DCT-1024"}) {
        const auto &bench = wl::benchmarkById(id);
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        const auto map =
            target::mapChains(compiled.partitions.front(), {});
        EXPECT_GT(map.chains.size(), 0u) << id;
        EXPECT_GT(map.cycles, 0) << id;
        EXPECT_LE(map.dspUtilization, 1.0) << id;
        EXPECT_FALSE(map.str().empty()) << id;
        // Every compute fragment lands in exactly one chain.
        size_t mapped_ops = 0;
        for (const auto &chain : map.chains)
            mapped_ops += chain.ops.size();
        size_t compute_frags = 0;
        for (const auto &frag : compiled.partitions.front().fragments) {
            compute_frags +=
                frag.opcode != "tload" && frag.opcode != "tstore" &&
                (frag.flops > 0 || frag.attrs.count("move_elems"));
        }
        EXPECT_EQ(mapped_ops, compute_frags) << id;
    }
}

// --- VTA tiler -----------------------------------------------------------------

TEST(VtaTiler, PlansEveryResnetLayer)
{
    const target::VtaTileConfig config;
    for (const auto &layer : target::resnet18Layers()) {
        const auto plan = target::planLayer(layer, config);
        EXPECT_GT(plan.totalCycles, 0) << layer.name;
        EXPECT_GT(plan.tiles, 0) << layer.name;
        EXPECT_GT(plan.utilization, 0.0) << layer.name;
        EXPECT_LE(plan.utilization, 1.0 + 1e-9) << layer.name;
        // The tile working set honors the buffers.
        const int64_t reduce =
            layer.inChannels * layer.kernel * layer.kernel;
        EXPECT_LE(plan.tileRows * reduce, config.inputBufBytes)
            << layer.name;
        EXPECT_LE(plan.tileCols * reduce, config.weightBufBytes)
            << layer.name;
    }
}

TEST(VtaTiler, BiggerBuffersNeverHurt)
{
    target::VtaTileConfig small;
    small.inputBufBytes = 96 * 1024;
    small.weightBufBytes = 96 * 1024;
    small.accumBufBytes = 32 * 1024;
    target::VtaTileConfig big;
    for (const auto &layer : target::resnet18Layers()) {
        const auto a = target::planLayer(layer, small);
        const auto b = target::planLayer(layer, big);
        EXPECT_GE(a.totalCycles, b.totalCycles) << layer.name;
    }
}

TEST(VtaTiler, PartialTilesLowerUtilization)
{
    target::VtaTileConfig config;
    target::LayerShape ragged;
    ragged.name = "ragged";
    ragged.inChannels = 64;
    ragged.outChannels = 17; // not a multiple of the GEMM core
    ragged.outHeight = 9;
    ragged.outWidth = 9;
    ragged.kernel = 3;
    const auto plan = target::planLayer(ragged, config);
    EXPECT_LT(plan.utilization, 0.95);
}

TEST(VtaTiler, ResnetTotalsMatchKnownMacs)
{
    double total = 0;
    for (const auto &layer : target::resnet18Layers())
        total += static_cast<double>(layer.macs());
    EXPECT_NEAR(total, 1.82e9, 0.1e9); // published ResNet-18 MAC count
}

// --- serialization --------------------------------------------------------------

TEST(Serialize, RoundTripPreservesStructureAndSemantics)
{
    auto g = ir::compileToSrdfg(wl::mobileRobotProgram());
    const auto json = ir::toJson(*g);
    auto restored = ir::fromJson(json, g->context);

    EXPECT_EQ(restored->liveNodeCount(), g->liveNodeCount());
    EXPECT_EQ(restored->scalarOpCount(), g->scalarOpCount());
    EXPECT_EQ(restored->inputs.size(), g->inputs.size());
    EXPECT_EQ(ir::printGraph(*restored), ir::printGraph(*g));

    // Same functional behavior.
    Rng rng(5);
    std::map<std::string, Tensor> in;
    for (ir::ValueId v : g->inputs) {
        const auto &md = g->value(v).md;
        Tensor t(DType::Float, md.shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian() * 0.1;
        in[md.name] = t;
    }
    const auto a = interp::evaluate(*g, in);
    const auto b = interp::evaluate(*restored, in);
    for (const auto &[name, tensor] : a)
        EXPECT_LT(Tensor::maxAbsDiff(tensor, b.at(name)), 1e-15) << name;
}

TEST(Serialize, RoundTripWithGuardsAndCustomReductions)
{
    auto g = ir::compileToSrdfg(
        "reduction mymax(a, b) = a > b ? a : b;"
        "main(input float A[4][4], output float s, output float m) {"
        " index i[0:3], j[0:3];"
        " s = sum[i][j: j != i](A[i][j]);"
        " m = mymax[i][j](A[i][j]); }");
    auto restored = ir::fromJson(ir::toJson(*g), g->context);
    Tensor a(DType::Float, Shape{4, 4});
    Rng rng(8);
    for (int64_t i = 0; i < 16; ++i)
        a.at(i) = rng.uniform(-3, 3);
    const auto x = interp::evaluate(*g, {{"A", a}});
    const auto y = interp::evaluate(*restored, {{"A", a}});
    EXPECT_EQ(x.at("s").scalarValue(), y.at("s").scalarValue());
    EXPECT_EQ(x.at("m").scalarValue(), y.at("m").scalarValue());
}

TEST(Serialize, IndexOperandAccessesSurvive)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[6], output float y[6], output float s) {"
        " index i[0:5];"
        " y[i] = x[i]*i;"
        " s = sum[i](x[i]*(i+1)); }");
    auto restored = ir::fromJson(ir::toJson(*g), g->context);
    const Tensor x = Tensor::vec({1, 1, 1, 1, 1, 1});
    const auto a = interp::evaluate(*g, {{"x", x}});
    const auto b = interp::evaluate(*restored, {{"x", x}});
    EXPECT_EQ(b.at("y").at(int64_t{4}), 4.0);
    EXPECT_EQ(a.at("s").scalarValue(), b.at("s").scalarValue());
    EXPECT_EQ(b.at("s").scalarValue(), 21.0);
}

TEST(Serialize, RejectsMalformedInput)
{
    EXPECT_THROW(ir::fromJson("{", nullptr), UserError);
    EXPECT_THROW(ir::fromJson("[1,2,3]", nullptr), UserError);
    EXPECT_THROW(ir::fromJson("{\"name\":\"x\"}", nullptr), UserError);
}

TEST(Serialize, ComplexProgramsSurvive)
{
    auto g = ir::compileToSrdfg(wl::fftProgram(64));
    auto restored = ir::fromJson(ir::toJson(*g), g->context);
    const auto signal = wl::complexSignal(64, 3);
    const auto tw = wl::twiddleTable(64);
    const auto a =
        interp::evaluate(*g, {{"x", signal}, {"tw", tw}});
    const auto b =
        interp::evaluate(*restored, {{"x", signal}, {"tw", tw}});
    EXPECT_LT(Tensor::maxAbsDiff(a.at("y"), b.at("y")), 1e-15);
}

} // namespace
} // namespace polymath
