/**
 * @file
 * Integration tests over the Table III/IV suite: every benchmark must
 * pass the whole stack (parse -> sema -> srDFG -> passes -> Algorithm 1 ->
 * Algorithm 2) for its accelerator; report helpers and the user-study
 * corpus are checked here too.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "report/report.h"
#include "targets/common/backend.h"
#include "workloads/python_corpus.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

class SuiteCompilation
    : public ::testing::TestWithParam<const wl::Benchmark *>
{
};

TEST_P(SuiteCompilation, CompilesThroughWholeStack)
{
    const auto &bench = *GetParam();
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        bench.source, bench.buildOpts, registry, bench.domain);
    ASSERT_FALSE(compiled.partitions.empty()) << bench.id;
    // Single-domain workloads land in one partition on their Table V
    // accelerator.
    EXPECT_EQ(compiled.partitions.size(), 1u) << bench.id;
    EXPECT_EQ(compiled.partitions.front().accel, bench.accel) << bench.id;
    EXPECT_GT(compiled.partitions.front().flops(), 0) << bench.id;
}

TEST_P(SuiteCompilation, SimulationsProducePositiveFiniteNumbers)
{
    const auto &bench = *GetParam();
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto compiled = wl::compileBenchmark(
        bench.source, bench.buildOpts, registry, bench.domain);
    const auto *backend = target::findBackend(backends, bench.accel);
    ASSERT_NE(backend, nullptr);
    const auto r =
        backend->simulate(compiled.partitions.front(), bench.profile);
    EXPECT_GT(r.seconds, 0.0) << bench.id;
    EXPECT_GT(r.joules, 0.0) << bench.id;
    EXPECT_TRUE(std::isfinite(r.seconds)) << bench.id;
}

TEST_P(SuiteCompilation, HandTunedNeverSlowerThanPolyMathCompute)
{
    const auto &bench = *GetParam();
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto compiled = wl::compileBenchmark(
        bench.source, bench.buildOpts, registry, bench.domain);
    const auto *backend = target::findBackend(backends, bench.accel);
    const auto &partition = compiled.partitions.front();
    const auto poly = backend->simulate(partition, bench.profile);
    const auto opt = backend->simulate(
        wl::optimalPartition(bench, partition), bench.profile);
    EXPECT_LE(opt.computeSeconds + opt.overheadSeconds,
              (poly.computeSeconds + poly.overheadSeconds) * 1.02)
        << bench.id;
}

std::vector<const wl::Benchmark *>
allBenchmarks()
{
    std::vector<const wl::Benchmark *> out;
    for (const auto &b : wl::tableIII())
        out.push_back(&b);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    TableIII, SuiteCompilation, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<const wl::Benchmark *> &info) {
        std::string name = info.param->id;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Suite, TableIiiHasFifteenEntriesAcrossFiveDomains)
{
    const auto &table = wl::tableIII();
    EXPECT_EQ(table.size(), 15u);
    std::set<lang::Domain> domains;
    for (const auto &b : table)
        domains.insert(b.domain);
    EXPECT_EQ(domains.size(), 5u);
}

TEST(Suite, LookupByIdWorksAndThrowsOnUnknown)
{
    EXPECT_EQ(wl::benchmarkById("FFT-8192").accel, "DECO");
    EXPECT_THROW(wl::benchmarkById("nope"), UserError);
}

TEST(Suite, EndToEndAppsCompileAcrossAccelerators)
{
    const auto registry = target::standardRegistry();
    for (const auto &app : wl::tableIV()) {
        const auto compiled = wl::compileBenchmark(
            app.source, app.buildOpts, registry, lang::Domain::None);
        std::set<std::string> accels;
        for (const auto &p : compiled.partitions)
            accels.insert(p.accel);
        EXPECT_EQ(accels.size(), app.kernels.size()) << app.id;
        for (const auto &kernel : app.kernels)
            EXPECT_TRUE(accels.count(kernel.accel))
                << app.id << "/" << kernel.label;
    }
}

TEST(Suite, EveryProgramHasPositiveLoc)
{
    for (const auto &b : wl::tableIII())
        EXPECT_GT(wl::pmlangLoc(b.source), 5) << b.id;
    for (const auto &app : wl::tableIV())
        EXPECT_GT(wl::pmlangLoc(app.source), 10) << app.id;
}

TEST(UserStudy, CorpusRatiosFavorPmlang)
{
    for (const auto &entry : wl::userStudyCorpus()) {
        EXPECT_GT(entry.pythonLoc(), entry.pmlangLoc())
            << entry.algorithm;
        EXPECT_GT(entry.pythonMinutes() / entry.pmlangMinutes(), 1.0)
            << entry.algorithm;
    }
}

// --- report helpers -----------------------------------------------------------

TEST(Report, GeomeanAndMean)
{
    const double values[] = {1.0, 4.0, 16.0};
    EXPECT_DOUBLE_EQ(report::geomean(values), 4.0);
    EXPECT_DOUBLE_EQ(report::mean(values), 7.0);
    const double with_zero[] = {0.0, 4.0};
    EXPECT_DOUBLE_EQ(report::geomean(with_zero), 4.0); // zeros skipped
    EXPECT_DOUBLE_EQ(report::geomean({}), 0.0);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(report::times(3.28), "3.3x");
    EXPECT_EQ(report::percent(0.839), "83.9%");
}

TEST(Report, TableAlignsColumns)
{
    report::Table t({"A", "LongHeader"});
    t.addRow({"row", "x"});
    const auto text = t.str();
    EXPECT_NE(text.find("A    LongHeader"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one"}), InternalError);
}

} // namespace
} // namespace polymath
