/**
 * @file
 * Unit tests for the core utilities: DType, Shape, Tensor, Rng, strings.
 */
#include <gtest/gtest.h>

#include "core/dtype.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/shape.h"
#include "core/strings.h"
#include "core/tensor.h"

namespace polymath {
namespace {

TEST(DType, RoundTripsThroughStrings)
{
    for (DType t : {DType::Bin, DType::Int, DType::Float, DType::Str,
                    DType::Complex}) {
        const auto parsed = dtypeFromString(toString(t));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, t);
    }
    EXPECT_FALSE(dtypeFromString("double").has_value());
}

TEST(DType, SizesMatchAcceleratorLayout)
{
    EXPECT_EQ(dtypeSize(DType::Bin), 1);
    EXPECT_EQ(dtypeSize(DType::Int), 8);
    EXPECT_EQ(dtypeSize(DType::Float), 8);
    EXPECT_EQ(dtypeSize(DType::Complex), 16);
    EXPECT_EQ(dtypeSize(DType::Str), 0);
}

TEST(DType, PromotionPicksWiderType)
{
    EXPECT_EQ(promote(DType::Bin, DType::Int), DType::Int);
    EXPECT_EQ(promote(DType::Int, DType::Float), DType::Float);
    EXPECT_EQ(promote(DType::Float, DType::Complex), DType::Complex);
    EXPECT_EQ(promote(DType::Complex, DType::Bin), DType::Complex);
    EXPECT_THROW(promote(DType::Str, DType::Int), InternalError);
}

TEST(Shape, ScalarHasRankZeroAndOneElement)
{
    Shape s;
    EXPECT_TRUE(s.isScalar());
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 1);
    EXPECT_EQ(s.str(), "scalar");
}

TEST(Shape, NumelAndStrides)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(s.strides(), (std::vector<int64_t>{12, 4, 1}));
    EXPECT_EQ(s.str(), "[2][3][4]");
}

TEST(Shape, FlattenIsRowMajor)
{
    Shape s{2, 3};
    EXPECT_EQ(s.flatten({0, 0}), 0);
    EXPECT_EQ(s.flatten({0, 2}), 2);
    EXPECT_EQ(s.flatten({1, 0}), 3);
    EXPECT_EQ(s.flatten({1, 2}), 5);
}

TEST(Shape, FlattenRejectsOutOfBounds)
{
    Shape s{2, 3};
    EXPECT_THROW(s.flatten({2, 0}), InternalError);
    EXPECT_THROW(s.flatten({0, 3}), InternalError);
    EXPECT_THROW(s.flatten({0}), InternalError);
}

class ShapeRoundTrip : public ::testing::TestWithParam<std::vector<int64_t>>
{
};

TEST_P(ShapeRoundTrip, UnflattenInvertsFlatten)
{
    const Shape s(GetParam());
    for (int64_t off = 0; off < s.numel(); ++off) {
        const auto idx = s.unflatten(off);
        EXPECT_EQ(s.flatten(idx), off);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeRoundTrip,
    ::testing::Values(std::vector<int64_t>{7},
                      std::vector<int64_t>{3, 5},
                      std::vector<int64_t>{2, 3, 4},
                      std::vector<int64_t>{1, 9, 1},
                      std::vector<int64_t>{2, 1, 2, 3}));

TEST(Tensor, ZeroInitialized)
{
    Tensor t(DType::Float, Shape{3, 3});
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0);
}

TEST(Tensor, ScalarFactories)
{
    EXPECT_DOUBLE_EQ(Tensor::scalar(2.5).scalarValue(), 2.5);
    const auto c = Tensor::scalar(std::complex<double>{1.0, -2.0});
    EXPECT_TRUE(c.isComplex());
    EXPECT_EQ(c.cat(0), (std::complex<double>{1.0, -2.0}));
}

TEST(Tensor, FromFlatChecksSize)
{
    EXPECT_THROW(Tensor::fromFlat(Shape{2, 2}, {1, 2, 3}), InternalError);
    const auto t = Tensor::fromFlat(Shape{2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at({1, 1}), 4.0);
}

TEST(Tensor, CastTruncatesToInt)
{
    auto t = Tensor::vec({1.9, -2.7, 3.0});
    const auto i = t.cast(DType::Int);
    EXPECT_EQ(i.at(int64_t{0}), 1.0);
    EXPECT_EQ(i.at(int64_t{1}), -2.0);
    EXPECT_EQ(i.at(int64_t{2}), 3.0);
}

TEST(Tensor, CastToBinIsNonZeroTest)
{
    auto t = Tensor::vec({0.0, -0.5, 2.0});
    const auto b = t.cast(DType::Bin);
    EXPECT_EQ(b.at(int64_t{0}), 0.0);
    EXPECT_EQ(b.at(int64_t{1}), 1.0);
    EXPECT_EQ(b.at(int64_t{2}), 1.0);
}

TEST(Tensor, CastRealToComplexAndBack)
{
    auto t = Tensor::vec({1.0, 2.0});
    const auto c = t.cast(DType::Complex);
    EXPECT_EQ(c.cat(1), (std::complex<double>{2.0, 0.0}));
    const auto back = c.cast(DType::Float);
    EXPECT_EQ(back.at(int64_t{1}), 2.0);
}

TEST(Tensor, MaxAbsDiff)
{
    const auto a = Tensor::vec({1.0, 2.0, 3.0});
    const auto b = Tensor::vec({1.0, 2.5, 3.0});
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(a, b), 0.5);
    EXPECT_THROW(Tensor::maxAbsDiff(a, Tensor::vec({1.0})), InternalError);
}

TEST(Tensor, ComplexAccessorsGuardDtype)
{
    Tensor real(DType::Float, Shape{2});
    Tensor cplx(DType::Complex, Shape{2});
    EXPECT_THROW(real.cat(0), InternalError);
    EXPECT_THROW(cplx.at(int64_t{0}), InternalError);
    EXPECT_EQ(real.asComplex(0), (std::complex<double>{0.0, 0.0}));
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(99);
    double sum = 0.0;
    double sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
    }
    EXPECT_THROW(rng.uniformInt(0), InternalError);
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 1.0 / 3.0), "0.33");
}

TEST(Strings, SplitAndJoin)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CountCodeLines)
{
    const std::string src = "a = 1\n\n// comment\n  // also\nb = 2\n";
    EXPECT_EQ(countCodeLines(src, "//"), 2);
    EXPECT_EQ(countCodeLines("# only\n# comments\n", "#"), 0);
}

TEST(Logging, LevelGateIsHonored)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    inform("suppressed");
    warn("suppressed");
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(saved);
}

TEST(Errors, SourceLocRendering)
{
    EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
    EXPECT_EQ((SourceLoc{3, 7}).str(), "3:7");
}

TEST(Errors, FatalCarriesLocation)
{
    try {
        fatal("bad thing", SourceLoc{2, 5});
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_EQ(e.loc().line, 2);
        EXPECT_NE(std::string(e.what()).find("2:5"), std::string::npos);
    }
}

} // namespace
} // namespace polymath
