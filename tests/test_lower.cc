/**
 * @file
 * Algorithm 1/2 tests: component splicing, granularity-targeted lowering
 * against per-domain Ot sets, compile failure on unsupported ops,
 * translation to fragments, boundary load/store insertion, partitioning,
 * and multi-accelerator domain splitting.
 */
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "lower/compile.h"
#include "lower/lower.h"
#include "srdfg/builder.h"
#include "srdfg/traversal.h"
#include "targets/common/backend.h"
#include "targets/common/op_sets.h"
#include "workloads/programs.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

using lang::Domain;
using lower::AcceleratorRegistry;
using lower::AcceleratorSpec;

const char *const kTwoLevel = R"(
scale(input float x[n], param float f, output float y[n]) {
    index i[0:n-1];
    y[i] = x[i]*f;
}
main(input float a[4], param float f, output float b[4]) {
    DSP: scale(a, f, b);
}
)";

TEST(Splice, InlinesSubgraphAndPreservesSemantics)
{
    auto g = ir::compileToSrdfg(kTwoLevel);
    ASSERT_EQ(ir::recursionDepth(*g), 2);
    ir::NodeId comp = -1;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.kind == ir::NodeKind::Component)
            comp = node.id;
    }
    ASSERT_GE(comp, 0);
    lower::spliceComponent(*g, comp);
    g->validate();
    EXPECT_EQ(ir::recursionDepth(*g), 1);

    auto out = interp::evaluate(*g, {{"a", Tensor::vec({1, 2, 3, 4})},
                                     {"f", Tensor::scalar(2.0)}});
    EXPECT_EQ(out.at("b").at(int64_t{3}), 8.0);
}

TEST(Splice, PassThroughStateAliases)
{
    auto g = ir::compileToSrdfg(R"(
peek(state float s[2], output float y) {
    y = s[0];
}
main(state float s[2], output float y) {
    RBT: peek(s, y);
}
)");
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.kind == ir::NodeKind::Component) {
            lower::spliceComponent(*g, node.id);
            break;
        }
    }
    g->validate();
    auto out = interp::evaluate(*g, {{"s", Tensor::vec({42, 0})}});
    EXPECT_EQ(out.at("y").scalarValue(), 42.0);
    EXPECT_EQ(out.at("s").at(int64_t{0}), 42.0); // state passes through
}

TEST(Lower, SplicesOnlyUnsupportedComponents)
{
    // A target accepting `scale` whole keeps it; one accepting only ALU
    // ops splices it.
    auto keep = ir::compileToSrdfg(kTwoLevel);
    lower::SupportedOps om;
    om[Domain::DSP] = {ir::Op::intern("scale"), ir::OpCode::Const};
    lower::lowerGraph(*keep, om);
    EXPECT_EQ(ir::recursionDepth(*keep), 2);

    auto splice = ir::compileToSrdfg(kTwoLevel);
    om[Domain::DSP] = target::scalarAluOps();
    lower::lowerGraph(*splice, om);
    EXPECT_EQ(ir::recursionDepth(*splice), 1);
}

TEST(Lower, FailsOnUnsupportedOp)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[2], output float y[2]) {"
        " index i[0:1]; y[i] = sigmoid(x[i]); }");
    lower::SupportedOps om;
    om[Domain::None] = target::scalarAluOps(); // no sigmoid
    EXPECT_THROW(lower::lowerGraph(*g, om), UserError);
}

TEST(Lower, CustomReductionAdmittedByWildcard)
{
    auto g = ir::compileToSrdfg(
        "reduction mymin(a, b) = a < b ? a : b;"
        "main(input float x[4], output float m) {"
        " index i[0:3]; m = mymin[i](x[i]); }");
    lower::SupportedOps om;
    om[Domain::None] = target::scalarAluOps();
    EXPECT_THROW(lower::lowerGraph(*g, om), UserError);

    auto g2 = ir::compileToSrdfg(
        "reduction mymin(a, b) = a < b ? a : b;"
        "main(input float x[4], output float m) {"
        " index i[0:3]; m = mymin[i](x[i]); }");
    om[Domain::None].insert("@custom_reduce");
    EXPECT_NO_THROW(lower::lowerGraph(*g2, om));
}

TEST(Lower, DnnStaysAtLayerGranularityForVta)
{
    const auto registry = target::standardRegistry();
    auto g = ir::compileToSrdfg(wl::mobilenetProgram());
    lower::lowerGraph(*g, registry.supportedOpsByDomain(), Domain::DL);
    // VTA consumes whole layers: conv components survive lowering.
    int64_t convs = 0;
    for (const auto &node : g->nodePool()) {
        if (node.live() && node.kind == ir::NodeKind::Component)
            convs += node.op == ir::Op::intern("conv2d") ||
                     node.op == ir::Op::intern("conv2d_dw");
    }
    EXPECT_GT(convs, 10);
}

TEST(Lower, SameProgramFullyFlattensForTabla)
{
    const auto registry = target::standardRegistry();
    auto g = ir::compileToSrdfg(wl::lrmfProgram(6, 8, 3));
    lower::lowerGraph(*g, registry.supportedOpsByDomain(), Domain::DA);
    EXPECT_EQ(ir::recursionDepth(*g), 1);
}

// --- Algorithm 2 -------------------------------------------------------------

TEST(Compile, FragmentsCarryOperandsAndStats)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        "main(input float A[4][3], input float x[3], output float y[4]) {"
        " index i[0:2], j[0:3]; y[j] = sum[i](A[j][i]*x[i]); }",
        {}, registry, Domain::DA);
    ASSERT_EQ(compiled.partitions.size(), 1u);
    const auto &part = compiled.partitions.front();
    EXPECT_EQ(part.accel, "TABLA");
    EXPECT_EQ(part.flops(), 20); // 12 multiplies + 4 x (3-1) adds

    bool has_reduce = false;
    for (const auto &frag : part.fragments) {
        if (frag.opcode == "sum") {
            has_reduce = true;
            EXPECT_EQ(frag.attrs.at("reduce_extent"), 3);
            EXPECT_EQ(frag.flops, 8); // 4 outputs x (3-1)
        }
    }
    EXPECT_TRUE(has_reduce);
}

TEST(Compile, LoadsAndStoresAtBoundary)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        "main(input float x[8], param float p[8], state float s[8]) {"
        " index i[0:7]; s[i] = s[i] + x[i]*p[i]; }",
        {}, registry, Domain::DA);
    const auto &part = compiled.partitions.front();
    const auto dma = target::dmaBreakdown(part);
    // x streams per run (fp32: 8*4); p and s place once (8*4 each + the
    // state store-back also classified as state).
    EXPECT_EQ(dma.perRunBytes, 32);
    EXPECT_GT(dma.oneTimeBytes, 0);
}

TEST(Compile, CrossDomainTransfersInserted)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(R"(
stage1(input float x[8], output float y[8]) {
    index i[0:7];
    y[i] = x[i]*2;
}
stage2(input float y[8], output float z) {
    index i[0:7];
    z = sum[i](y[i]);
}
main(input float x[8], output float z) {
    float y[8];
    DSP: stage1(x, y);
    DA: stage2(y, z);
}
)",
                                               {}, registry, Domain::None);
    // Two partitions with a dependency and a stored/loaded tensor y.
    ASSERT_EQ(compiled.partitions.size(), 2u);
    const auto &second = compiled.partitions[1];
    ASSERT_EQ(second.deps.size(), 1u);
    EXPECT_EQ(second.deps[0], 0);
    bool y_stored = false;
    for (const auto &s : compiled.partitions[0].stores)
        y_stored |= s.name == "y";
    EXPECT_TRUE(y_stored);
    EXPECT_GT(compiled.transferBytes(), 0);
}

TEST(Compile, AffinityKeepsDomainsContiguous)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(wl::brainStimulProgram(), {},
                                               registry, Domain::None);
    // The three-domain app may split RoboX around the TABLA dependency but
    // must not shatter into per-node partitions.
    EXPECT_LE(compiled.partitions.size(), 5u);
    EXPECT_GE(compiled.partitions.size(), 3u);
}

TEST(Compile, PreferredComponentSplitsDataAnalytics)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(wl::optionPricingProgram(),
                                               {}, registry, Domain::None);
    std::set<std::string> accels;
    for (const auto &part : compiled.partitions)
        accels.insert(part.accel);
    EXPECT_TRUE(accels.count("TABLA"));
    EXPECT_TRUE(accels.count("HyperStreams"));
    // Black-Scholes arrives whole at HyperStreams.
    bool pipeline_frag = false;
    for (const auto &part : compiled.partitions) {
        for (const auto &frag : part.fragments)
            pipeline_frag |= frag.opcode == "pipeline/black_scholes";
    }
    EXPECT_TRUE(pipeline_frag);
}

TEST(Compile, NoRegisteredDomainIsUserError)
{
    AcceleratorRegistry empty;
    auto g = ir::compileToSrdfg(
        "main(input float x, output float y) { y = x; }");
    EXPECT_THROW(lower::compileProgram(*g, empty, Domain::DA), UserError);
}

TEST(Compile, ProgramRenderingIsStable)
{
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(
        "main(input float x[4], output float y[4]) {"
        " index i[0:3]; y[i] = x[i]+1; }",
        {}, registry, Domain::DSP);
    const auto text = compiled.str();
    EXPECT_NE(text.find("DECO"), std::string::npos);
    EXPECT_NE(text.find("tload"), std::string::npos);
    EXPECT_NE(text.find("tstore"), std::string::npos);
}

} // namespace
} // namespace polymath
