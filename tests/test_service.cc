/**
 * @file
 * Tests for the pmcd compile service (src/service/, docs/SERVICE.md) and
 * the CompileCache behaviors it depends on: wire-protocol round-trips,
 * server responses byte-identical to direct execution, structured errors
 * for malformed request lines, round-robin fairness across client
 * connections, admission-control accounting (completed + rejected ==
 * offered), drain-before-shutdown, the failed-compile eviction race
 * regression, and the LRU bound (in-flight entries never dropped).
 *
 * tools/check.sh runs this binary under ThreadSanitizer as well: the
 * server's reader threads, pool workers, and shutdown path all race
 * here by construction.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "core/net.h"
#include "lower/compile_cache.h"
#include "service/client.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "service/server.h"

namespace polymath {
namespace {

/** Unique socket path per test (the listener unlinks it on close). */
std::string
testSocket(const std::string &tag)
{
    return "/tmp/pm_test_service_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

/** A tiny single-statement program, distinct per @p k. */
std::string
tinySource(int k)
{
    return "main(input float x, output float y) { y = x*" +
           std::to_string(k + 2) + "; }";
}

/**
 * A wider program (one statement, many scalar ops), distinct per @p k —
 * heavy enough that compiling it dominates the microseconds it takes a
 * reader thread to enqueue a burst of requests.
 */
std::string
wideSource(int k)
{
    std::string expr = "x*" + std::to_string(k + 2);
    for (int i = 0; i < 80; ++i)
        expr += " + x*" + std::to_string(k * 100 + i + 3);
    return "main(input float x, output float y) { y = " + expr + "; }";
}

service::Request
compileRequest(const std::string &source, int64_t id)
{
    service::Request req;
    req.id = id;
    req.verb = service::Verb::Compile;
    req.file = "<test>";
    req.source = source;
    req.target = "DA";
    return req;
}

// ---------------------------------------------------------------------
// Wire protocol

TEST(ServiceProtocol, RequestRoundTripsThroughJson)
{
    service::Request req;
    req.id = 42;
    req.verb = service::Verb::Profile;
    req.file = "dir/with \"quotes\"\nand newline.pm";
    req.source = "main() { }\n\tweird \x01 bytes";
    req.entry = "start";
    req.params = {{"n", 128}, {"m", -7}};
    req.optimize = true;
    req.target = "DSP";
    req.schedule = true;
    req.invocations = 1000;
    req.faultRate = 0.25;
    req.faultSeed = (1ull << 60) + 12345; // beyond double precision
    req.profileTop = 3;
    req.profileDoc = true;
    req.requestId = "client-7";
    req.metricsDelta = true;

    const std::string line = req.json();
    // JSON-line framing: the document must never contain a raw newline.
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const auto back = service::Request::fromJson(line);
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.verb, req.verb);
    EXPECT_EQ(back.file, req.file);
    EXPECT_EQ(back.source, req.source);
    EXPECT_EQ(back.entry, req.entry);
    EXPECT_EQ(back.params, req.params);
    EXPECT_EQ(back.optimize, req.optimize);
    EXPECT_EQ(back.target, req.target);
    EXPECT_EQ(back.schedule, req.schedule);
    EXPECT_EQ(back.invocations, req.invocations);
    EXPECT_DOUBLE_EQ(back.faultRate, req.faultRate);
    EXPECT_EQ(back.faultSeed, req.faultSeed);
    EXPECT_EQ(back.profileTop, req.profileTop);
    EXPECT_EQ(back.profileDoc, req.profileDoc);
    EXPECT_EQ(back.requestId, req.requestId);
    EXPECT_EQ(back.metricsDelta, req.metricsDelta);
    // A second rendering is byte-stable.
    EXPECT_EQ(back.json(), line);

    // The attribution fields are opt-in on the wire: a request without
    // them serializes exactly as before they existed.
    service::Request plain;
    plain.verb = service::Verb::Compile;
    EXPECT_EQ(plain.json().find("requestId"), std::string::npos);
    EXPECT_EQ(plain.json().find("metricsDelta"), std::string::npos);
}

TEST(ServiceProtocol, ResponseRoundTripsThroughJson)
{
    service::Response resp;
    resp.id = 7;
    resp.ok = true;
    resp.code = 0;
    resp.cacheHit = true;
    resp.output = "line one\nline two\ttab\n";
    resp.error = "warn: \"quoted\"\n";
    resp.profileJson = "{\"schema\":\"polymath-profile/1\"}\n";
    resp.stats = {{"offered", 12}, {"cacheHitRate", 0.5}};
    resp.requestId = "r17";
    resp.metricsJson = "{\"counters\":{}}";

    const std::string line = resp.json();
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const auto back = service::Response::fromJson(line);
    EXPECT_EQ(back.id, resp.id);
    EXPECT_EQ(back.ok, resp.ok);
    EXPECT_EQ(back.rejected, resp.rejected);
    EXPECT_EQ(back.code, resp.code);
    EXPECT_EQ(back.cacheHit, resp.cacheHit);
    EXPECT_EQ(back.output, resp.output);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.profileJson, resp.profileJson);
    EXPECT_EQ(back.stats, resp.stats);
    EXPECT_EQ(back.requestId, resp.requestId);
    EXPECT_EQ(back.metricsJson, resp.metricsJson);

    // Telemetry off the wire: no attribution fields, byte-identical
    // rendering to the pre-telemetry protocol.
    service::Response plain;
    plain.id = 1;
    plain.ok = true;
    EXPECT_EQ(plain.json().find("requestId"), std::string::npos);
    EXPECT_EQ(plain.json().find("metricsJson"), std::string::npos);
}

TEST(ServiceProtocol, RejectsBadRequests)
{
    EXPECT_THROW(service::Request::fromJson("not json"), UserError);
    EXPECT_THROW(service::Request::fromJson("{\"id\":1}"), UserError);
    EXPECT_THROW(service::Request::fromJson("{\"verb\":\"bogus\"}"),
                 UserError);
    EXPECT_THROW(
        service::Request::fromJson(
            "{\"verb\":\"compile\",\"invocations\":0}"),
        UserError);
    EXPECT_THROW(
        service::Request::fromJson(
            "{\"verb\":\"compile\",\"faultSeed\":\"-1\"}"),
        UserError);
}

// ---------------------------------------------------------------------
// Server behavior over the real socket

TEST(ServiceServer, ResponsesMatchDirectExecution)
{
    lower::CompileCache server_cache;
    service::ServerConfig config;
    config.socketPath = testSocket("echo");
    config.jobs = 2;
    config.cache = &server_cache;
    service::Server server(config);
    server.start();

    // compile, simulate, profile, and a program with a syntax error:
    // each response must carry the bytes runRequestGuarded produces.
    std::vector<service::Request> requests;
    requests.push_back(compileRequest(tinySource(0), 0));
    {
        auto req = compileRequest(tinySource(1), 1);
        req.verb = service::Verb::Simulate;
        req.invocations = 10;
        req.faultRate = 0.2;
        req.faultSeed = 99;
        requests.push_back(req);
    }
    {
        auto req = compileRequest(tinySource(2), 2);
        req.verb = service::Verb::Profile;
        req.profileTop = 2;
        requests.push_back(req);
    }
    requests.push_back(compileRequest("main( { broken", 3));

    service::Client client(config.socketPath);
    for (const auto &req : requests) {
        const auto remote = client.call(req);
        lower::CompileCache local_cache;
        const auto local = service::runRequestGuarded(req, local_cache);
        EXPECT_EQ(remote.id, req.id);
        EXPECT_EQ(remote.ok, local.ok);
        EXPECT_EQ(remote.code, local.code);
        EXPECT_EQ(remote.output, local.output);
        EXPECT_EQ(remote.error, local.error);
        EXPECT_EQ(remote.profileJson, local.profileJson);
    }

    // Repeating a request is served from the shared cache.
    const auto again = client.call(requests[0]);
    EXPECT_TRUE(again.ok);
    EXPECT_TRUE(again.cacheHit);

    server.requestStop();
    server.wait();
}

TEST(ServiceServer, MalformedLinesGetStructuredErrors)
{
    service::ServerConfig config;
    config.socketPath = testSocket("malformed");
    config.jobs = 1;
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    const std::vector<std::string> bad = {
        "garbage",
        "{\"id\":5}",                       // no verb
        "{\"verb\":\"nope\"}",              // unknown verb
        "{\"verb\":\"compile\",\"id\":",    // truncated JSON
    };
    for (const auto &line : bad) {
        ASSERT_TRUE(core::writeAll(client.fd(), line + "\n"));
        service::Response resp;
        ASSERT_TRUE(client.recv(resp)) << line;
        EXPECT_FALSE(resp.ok) << line;
        EXPECT_EQ(resp.code, 2) << line;
        EXPECT_FALSE(resp.error.empty()) << line;
    }

    // The connection survives; a valid request still works, and the
    // malformed lines were counted.
    const auto good = client.call(compileRequest(tinySource(0), 9));
    EXPECT_TRUE(good.ok);
    service::Request stats;
    stats.verb = service::Verb::Stats;
    const auto snap = client.call(stats);
    EXPECT_DOUBLE_EQ(snap.stats.at("malformed"),
                     static_cast<double>(bad.size()));

    // A truncated *final* line (no terminator, then EOF) must not crash
    // the server or poison later connections.
    {
        const int fd = core::connectUnix(config.socketPath);
        ASSERT_TRUE(core::writeAll(fd, "{\"verb\":\"comp"));
        core::closeFd(fd);
    }
    const auto after = client.call(compileRequest(tinySource(1), 10));
    EXPECT_TRUE(after.ok);

    server.requestStop();
    server.wait();
}

TEST(ServiceServer, RoundRobinKeepsSmallClientsAhead)
{
    using Clock = std::chrono::steady_clock;
    lower::CompileCache cache;
    service::ServerConfig config;
    config.socketPath = testSocket("fairness");
    config.jobs = 1; // serial executor makes fairness observable
    config.cache = &cache;
    service::Server server(config);
    server.start();

    constexpr int kBacklog = 48;
    Clock::time_point heavy_done;
    Clock::time_point light_done;

    std::thread heavy([&] {
        service::Client client(config.socketPath);
        for (int i = 0; i < kBacklog; ++i)
            client.send(compileRequest(wideSource(i), i));
        for (int i = 0; i < kBacklog; ++i) {
            service::Response resp;
            ASSERT_TRUE(client.recv(resp));
            EXPECT_TRUE(resp.ok) << resp.error;
        }
        heavy_done = Clock::now();
    });

    // The light client connects while the heavy backlog drains. With
    // FIFO dispatch its lone request would wait behind all of the
    // backlog; round-robin pulls it within ~one slot.
    std::thread light([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        service::Client client(config.socketPath);
        const auto resp =
            client.call(compileRequest(wideSource(1000), 0));
        EXPECT_TRUE(resp.ok) << resp.error;
        light_done = Clock::now();
    });

    heavy.join();
    light.join();
    EXPECT_LT(light_done.time_since_epoch().count(),
              heavy_done.time_since_epoch().count())
        << "single-request client waited behind another client's "
           "entire backlog";

    server.requestStop();
    server.wait();
}

TEST(ServiceServer, AdmissionRejectionIsAccounted)
{
    lower::CompileCache cache;
    service::ServerConfig config;
    config.socketPath = testSocket("admission");
    config.jobs = 1;
    config.maxPending = 1;
    config.cache = &cache;
    service::Server server(config);
    server.start();

    constexpr int kBurst = 32;
    int64_t rejected = 0;
    int64_t completed = 0;
    {
        service::Client client(config.socketPath);
        for (int i = 0; i < kBurst; ++i)
            client.send(compileRequest(wideSource(i), i));
        for (int i = 0; i < kBurst; ++i) {
            service::Response resp;
            ASSERT_TRUE(client.recv(resp));
            if (resp.rejected) {
                ++rejected;
                EXPECT_EQ(resp.code, 3);
                EXPECT_FALSE(resp.ok);
                EXPECT_FALSE(resp.error.empty());
            } else {
                ++completed;
                EXPECT_TRUE(resp.ok) << resp.error;
            }
        }
    }
    // A burst of 32 against an admission bound of 1 must shed load...
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(rejected + completed, kBurst);

    // ...and the server's books must agree exactly with the client's:
    // conservation (completed + rejected == offered), checked on the
    // post-drain shutdown stats.
    service::Client control(config.socketPath);
    service::Request shutdown_req;
    shutdown_req.verb = service::Verb::Shutdown;
    const auto bye = control.call(shutdown_req);
    EXPECT_TRUE(bye.ok);
    EXPECT_DOUBLE_EQ(bye.stats.at("offered"),
                     static_cast<double>(kBurst));
    EXPECT_DOUBLE_EQ(bye.stats.at("rejected"),
                     static_cast<double>(rejected));
    EXPECT_DOUBLE_EQ(bye.stats.at("completed"),
                     static_cast<double>(completed));
    EXPECT_DOUBLE_EQ(bye.stats.at("pending"), 0.0);
    EXPECT_DOUBLE_EQ(bye.stats.at("executing"), 0.0);
    server.wait();
}

TEST(ServiceServer, ShutdownDrainsQueuedWorkFirst)
{
    lower::CompileCache cache;
    service::ServerConfig config;
    config.socketPath = testSocket("shutdown");
    config.jobs = 2;
    config.cache = &cache;
    service::Server server(config);
    server.start();

    constexpr int kWork = 5;
    service::Client client(config.socketPath);
    for (int i = 0; i < kWork; ++i)
        client.send(compileRequest(wideSource(i), i));
    service::Request shutdown_req;
    shutdown_req.verb = service::Verb::Shutdown;
    shutdown_req.id = 999;
    client.send(shutdown_req);

    // Every queued request is answered before the shutdown response:
    // the shutdown line must arrive last, after all five work replies.
    std::vector<bool> seen(kWork, false);
    for (int i = 0; i < kWork; ++i) {
        service::Response resp;
        ASSERT_TRUE(client.recv(resp));
        ASSERT_GE(resp.id, 0);
        ASSERT_LT(resp.id, kWork);
        EXPECT_FALSE(seen[static_cast<size_t>(resp.id)]);
        seen[static_cast<size_t>(resp.id)] = true;
        EXPECT_TRUE(resp.ok) << resp.error;
    }
    service::Response bye;
    ASSERT_TRUE(client.recv(bye));
    EXPECT_EQ(bye.id, 999);
    EXPECT_TRUE(bye.ok);
    EXPECT_DOUBLE_EQ(bye.stats.at("completed"),
                     static_cast<double>(kWork));
    EXPECT_DOUBLE_EQ(bye.stats.at("pending"), 0.0);
    EXPECT_DOUBLE_EQ(bye.stats.at("executing"), 0.0);

    server.wait();
    // Fully stopped: the socket is gone, new connections fail.
    EXPECT_THROW(service::Client{config.socketPath}, UserError);
}

// ---------------------------------------------------------------------
// CompileCache regressions the service exposed

TEST(CompileCacheRace, FailedOwnerEvictsOnlyItsOwnEntry)
{
    lower::CompileCache cache;
    std::mutex m;
    std::condition_variable cv;
    bool t1_entered = false, t1_release = false;
    bool t2_entered = false, t2_release = false;

    // T1 becomes the owner for "k", blocks inside its compile fn, and
    // will eventually throw.
    std::thread t1([&] {
        EXPECT_THROW(
            cache.getOrCompile(
                "k",
                [&]() -> lower::CompiledProgram {
                    std::unique_lock<std::mutex> lock(m);
                    t1_entered = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return t1_release; });
                    throw std::runtime_error("compile failed");
                }),
            std::runtime_error);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return t1_entered; });
    }

    // T1's entry is dropped while it is still compiling, and T2 becomes
    // the *new* owner for the same key.
    cache.clear();
    std::thread t2([&] {
        const auto program = cache.getOrCompile("k", [&] {
            std::unique_lock<std::mutex> lock(m);
            t2_entered = true;
            cv.notify_all();
            cv.wait(lock, [&] { return t2_release; });
            return lower::CompiledProgram{};
        });
        EXPECT_NE(program, nullptr);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return t2_entered; });
    }

    // T1 fails now. Before the generation guard, its unconditional
    // erase(key) removed T2's fresh in-flight entry here, orphaning
    // T2's coalescing point and forcing later callers to recompile.
    {
        std::lock_guard<std::mutex> lock(m);
        t1_release = true;
        cv.notify_all();
    }
    t1.join();
    EXPECT_EQ(cache.size(), 1u) << "failed owner evicted another "
                                   "thread's in-flight entry";

    {
        std::lock_guard<std::mutex> lock(m);
        t2_release = true;
        cv.notify_all();
    }
    t2.join();

    // A third caller must be served from T2's entry, not recompile.
    bool compiled = false;
    const auto program = cache.getOrCompile("k", [&] {
        compiled = true;
        return lower::CompiledProgram{};
    });
    EXPECT_NE(program, nullptr);
    EXPECT_FALSE(compiled);
}

TEST(CompileCacheLru, BoundedCacheEvictsLeastRecentlyUsed)
{
    lower::CompileCache cache;
    cache.setCapacity(2);
    EXPECT_EQ(cache.capacity(), 2u);
    const auto compile = [] { return lower::CompiledProgram{}; };
    cache.getOrCompile("a", compile);
    cache.getOrCompile("b", compile);
    EXPECT_EQ(cache.evictions(), 0);
    cache.getOrCompile("c", compile); // evicts "a" (least recent)
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1);

    // "b" and "c" are still resident...
    bool compiled = false;
    cache.getOrCompile("b", [&] {
        compiled = true;
        return lower::CompiledProgram{};
    });
    EXPECT_FALSE(compiled);
    // ...and re-requesting "a" is a miss that evicts the LRU ("c": the
    // "b" hit just refreshed its recency).
    cache.getOrCompile("a", [&] {
        compiled = true;
        return lower::CompiledProgram{};
    });
    EXPECT_TRUE(compiled);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 2);
    compiled = false;
    cache.getOrCompile("c", [&] {
        compiled = true;
        return lower::CompiledProgram{};
    });
    EXPECT_TRUE(compiled) << "expected 'c' to have been evicted";
}

TEST(CompileCacheLru, InFlightEntriesAreNeverDropped)
{
    lower::CompileCache cache;
    cache.setCapacity(1);
    std::mutex m;
    std::condition_variable cv;
    bool entered = false, release = false;

    std::thread slow([&] {
        const auto program = cache.getOrCompile("slow", [&] {
            std::unique_lock<std::mutex> lock(m);
            entered = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
            return lower::CompiledProgram{};
        });
        EXPECT_NE(program, nullptr);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return entered; });
    }

    // Over capacity while "slow" is in flight: the finished entry is
    // the one evicted, never the in-flight one.
    cache.getOrCompile("fast", [] { return lower::CompiledProgram{}; });
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_EQ(cache.size(), 1u);

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    slow.join();

    // "slow" survived to become the resident entry.
    bool compiled = false;
    cache.getOrCompile("slow", [&] {
        compiled = true;
        return lower::CompiledProgram{};
    });
    EXPECT_FALSE(compiled);
    EXPECT_EQ(cache.size(), 1u);
}

} // namespace
} // namespace polymath
