/**
 * @file
 * Observability tests: span recording/nesting, the zero-cost disabled
 * path, counter/histogram atomicity under the thread pool, Chrome-trace
 * export structure, the virtual SoC timeline, fault metrics vs. the
 * ReliabilityReport, and -j1 == -jN span-count determinism over the
 * Table III suite (docs/OBSERVABILITY.md).
 */
#include <algorithm>
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "driver.h"
#include "lower/compile_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "soc/soc.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

// --- spans -------------------------------------------------------------------

TEST(Trace, SpansRecordOnDestructionInnermostFirst)
{
    obs::TraceRecorder rec;
    rec.setEnabled(true);
    {
        obs::Span outer("outer", "test", rec);
        {
            obs::Span inner("inner", "test", rec);
            inner.arg("k", int64_t{7});
        }
        outer.arg("s", std::string("v"));
    }
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "inner"); // destroyed (recorded) first
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[0].ph, 'X');
    EXPECT_EQ(events[0].pid, obs::kRealPid);
    // The inner span nests inside the outer on the timeline.
    EXPECT_GE(events[0].ts, events[1].ts);
    EXPECT_LE(events[0].ts + events[0].dur,
              events[1].ts + events[1].dur);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].key, "k");
    EXPECT_EQ(events[0].args[0].value, "7");
    EXPECT_TRUE(events[0].args[0].numeric);
    ASSERT_EQ(events[1].args.size(), 1u);
    EXPECT_FALSE(events[1].args[0].numeric);
}

TEST(Trace, DisabledRecorderIsZeroEventNoOp)
{
    obs::TraceRecorder rec; // disabled by default
    {
        obs::Span span("never", "test", rec);
        EXPECT_FALSE(span.active());
        span.arg("k", int64_t{1});
        span.rename("still-never");
    }
    rec.instant("nope", "test");
    rec.completeReal("nope", "test", 0, 1);
    rec.virtualSpan("nope", "test", 0, 0.0, 1.0);
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(Trace, EnableDisableGatesRecording)
{
    obs::TraceRecorder rec;
    rec.setEnabled(true);
    rec.instant("on", "test");
    rec.setEnabled(false);
    rec.instant("off", "test");
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "on");
    EXPECT_EQ(events[0].ph, 'i');
}

TEST(Trace, VirtualSpansConvertSecondsToMicros)
{
    obs::TraceRecorder rec;
    rec.setEnabled(true);
    const int64_t track = rec.newVirtualTrack();
    EXPECT_NE(rec.newVirtualTrack(), track); // tracks are distinct
    rec.virtualSpan("compute", "soc", track, 1.5, 0.25);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].pid, obs::kVirtualPid);
    EXPECT_EQ(events[0].tid, track);
    EXPECT_EQ(events[0].ts, 1'500'000);
    EXPECT_EQ(events[0].dur, 250'000);
}

TEST(Trace, ThreadRankIsStablePerThreadAndDenseAcrossThreads)
{
    const int64_t here = obs::TraceRecorder::threadRank();
    EXPECT_EQ(obs::TraceRecorder::threadRank(), here);
    const auto ranks = core::parallelMap(
        4, 8, [](int64_t) { return obs::TraceRecorder::threadRank(); });
    for (const int64_t rank : ranks)
        EXPECT_GE(rank, 0);
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CountersAreAtomicUnderThePool)
{
    obs::MetricsRegistry registry;
    auto &counter = registry.counter("n");
    core::parallelMap(8, 1000, [&](int64_t) {
        counter.add(1);
        return 0;
    });
    EXPECT_EQ(counter.value(), 1000);
    // Lookup returns the same counter, not a new one.
    EXPECT_EQ(registry.counter("n").value(), 1000);
}

TEST(Metrics, HistogramTracksCountSumMinMaxUnderThePool)
{
    obs::MetricsRegistry registry;
    auto &hist = registry.histogram("h");
    core::parallelMap(8, 100, [&](int64_t i) {
        hist.observe(i + 1); // 1..100
        return 0;
    });
    const auto stats = registry.snapshot().histograms.at("h");
    EXPECT_EQ(stats.count, 100);
    EXPECT_EQ(stats.sum, 5050);
    EXPECT_EQ(stats.min, 1);
    EXPECT_EQ(stats.max, 100);
    EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
}

TEST(Metrics, SnapshotIsAssertFriendlyAndResettable)
{
    obs::MetricsRegistry registry;
    registry.counter("c").add(3);
    registry.gauge("g").set(2.5);
    auto snap = registry.snapshot();
    EXPECT_EQ(snap.counter("c"), 3);
    EXPECT_EQ(snap.counter("absent"), 0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
    EXPECT_EQ(snap.str().rfind("c", 0), 0u); // name column first
    EXPECT_NE(snap.str().find(" 3\n"), std::string::npos);
    EXPECT_NE(snap.json().find("\"counters\""), std::string::npos);
    registry.reset();
    EXPECT_EQ(registry.snapshot().counter("c"), 0);
}

// --- Chrome-trace export -----------------------------------------------------

TEST(Export, ChromeTraceJsonHasRequiredKeysAndBalancedBraces)
{
    obs::TraceRecorder rec;
    rec.setEnabled(true);
    {
        obs::Span span("quoted \"name\" \\ with\nnewline", "cat", rec);
        span.arg("note", std::string("tab\there"));
        span.arg("n", int64_t{-4});
    }
    rec.virtualSpan("compute", "soc", rec.newVirtualTrack(), 0.0, 0.5);
    rec.instant("mark", "cat");

    const std::string json = obs::chromeTraceJson(rec);
    for (const char *key :
         {"\"traceEvents\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"",
          "\"dur\"", "\"name\"", "\"cat\"", "\"args\"",
          "\"process_name\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // Control characters and quotes inside strings must be escaped; the
    // only raw newlines are the exporter's own event separators.
    EXPECT_EQ(json.find('\t'), std::string::npos);
    EXPECT_NE(json.find("\\\"name\\\""), std::string::npos);
    EXPECT_NE(json.find("with\\nnewline"), std::string::npos);
    EXPECT_NE(json.find("tab\\there"), std::string::npos);
    const auto count = [&](char c) {
        return std::count(json.begin(), json.end(), c);
    };
    EXPECT_EQ(count('{'), count('}'));
    EXPECT_EQ(count('['), count(']'));
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// --- the instrumented stack --------------------------------------------------

/** Compiles + SoC-executes the Table III suite under the global recorder
 *  with @p jobs workers, returning per-name span counts. */
std::map<std::string, int64_t>
suiteSpanCounts(int jobs)
{
    // Force the lazily-built workload table first: its one-time
    // construction parses benchmark sources, which would otherwise show
    // up as extra frontend spans in whichever run happens to be first.
    wl::tableIII();
    auto &rec = obs::TraceRecorder::global();
    lower::CompileCache::global().clear();
    rec.clear();
    rec.setEnabled(true);
    {
        bench::DriverOptions options;
        options.jobs = jobs;
        const bench::Driver driver(options);
        const auto registry = target::standardRegistry();
        driver.mapTableIII(
            registry, [](const wl::Benchmark &bench,
                         const lower::CompiledProgram &program) {
                const soc::SocRuntime runtime;
                runtime.execute(program, bench.profile);
                return 0;
            });
    }
    rec.setEnabled(false);
    std::map<std::string, int64_t> counts;
    for (const auto &event : rec.snapshot()) {
        // cache:coalesced-wait is the one timing-dependent span: whether
        // a cache hit blocks on an in-flight compile depends on thread
        // interleaving, so it is excluded from the determinism contract
        // (docs/OBSERVABILITY.md).
        if (event.name != "cache:coalesced-wait")
            ++counts[event.name];
    }
    rec.clear();
    return counts;
}

TEST(Instrumentation, SuiteSpanCountsAreIdenticalAcrossJobs)
{
    const auto serial = suiteSpanCounts(1);
    const auto parallel = suiteSpanCounts(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // The whole stack shows up: frontend, passes, lowering, per-partition
    // compiles, backend scheduling, SoC execution, and driver jobs.
    for (const char *name :
         {"pmlang:parse", "pmlang:sema", "srdfg:build", "pass:fixpoint",
          "lower:graph", "lower:compile", "backend:simulate",
          "soc:execute", "driver:job"}) {
        EXPECT_TRUE(serial.count(name) > 0) << name;
    }
}

TEST(Instrumentation, UntracedSuiteRunRecordsNothing)
{
    auto &rec = obs::TraceRecorder::global();
    rec.setEnabled(false);
    rec.clear();
    lower::CompileCache::global().clear();
    const auto registry = target::standardRegistry();
    const auto &bench = wl::tableIII().front();
    const auto program = wl::compileBenchmarkCached(
        bench.source, bench.buildOpts, registry, bench.domain,
        lower::CompileCache::global());
    const soc::SocRuntime runtime;
    runtime.execute(*program, bench.profile);
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(Instrumentation, SocLaysDmaAndComputeOnTheVirtualTimeline)
{
    auto &rec = obs::TraceRecorder::global();
    lower::CompileCache::global().clear();
    rec.clear();
    rec.setEnabled(true);
    const auto registry = target::standardRegistry();
    const auto &bench = wl::tableIII().front();
    const auto program = wl::compileBenchmarkCached(
        bench.source, bench.buildOpts, registry, bench.domain,
        lower::CompileCache::global());
    const soc::SocRuntime runtime;
    const auto result = runtime.execute(*program, bench.profile);
    rec.setEnabled(false);

    std::vector<obs::TraceEvent> virt;
    for (const auto &event : rec.snapshot()) {
        if (event.pid == obs::kVirtualPid && event.ph == 'X')
            virt.push_back(event);
    }
    rec.clear();
    ASSERT_FALSE(virt.empty());
    const auto has_prefix = [&](const char *prefix) {
        return std::any_of(virt.begin(), virt.end(),
                           [&](const obs::TraceEvent &e) {
                               return e.name.rfind(prefix, 0) == 0;
                           });
    };
    EXPECT_TRUE(has_prefix("compute["));
    EXPECT_TRUE(has_prefix("dma["));
    // One compute span per partition, all on one track, starting at t=0
    // and non-overlapping in schedule order.
    const int64_t track = virt.front().tid;
    int64_t cursor = 0;
    int64_t computes = 0;
    for (const auto &event : virt) {
        EXPECT_EQ(event.tid, track);
        EXPECT_GE(event.ts, 0);
        EXPECT_GE(event.dur, 0);
        if (event.name.rfind("compute[", 0) == 0) {
            EXPECT_GE(event.ts, cursor);
            cursor = event.ts + event.dur;
            ++computes;
        }
    }
    EXPECT_EQ(computes,
              static_cast<int64_t>(program->partitions.size()));
    // The track's extent matches the simulated end-to-end runtime to
    // microsecond rounding (host glue/manager time is not a span).
    EXPECT_LE(static_cast<double>(cursor) * 1e-6,
              result.total.seconds + 1e-6);
}

TEST(Instrumentation, FaultMetricsMatchTheReliabilityReport)
{
    auto &metrics = obs::MetricsRegistry::global();
    lower::CompileCache::global().clear();
    const auto registry = target::standardRegistry();
    const auto &bench = wl::tableIII().front();
    const auto program = wl::compileBenchmarkCached(
        bench.source, bench.buildOpts, registry, bench.domain,
        lower::CompileCache::global());

    soc::FaultConfig config;
    config.seed = 0xfeed;
    config.dmaFailureRate = 0.6;
    config.watchdogRate = 0.3;
    config.accelUnavailableRate = 0.1;
    soc::SocRuntime runtime;
    runtime.setFaultModel(soc::FaultModel(config));

    const auto before = metrics.snapshot();
    const auto result = runtime.execute(*program, bench.profile);
    const auto after = metrics.snapshot();

    const auto delta = [&](const char *name) {
        return after.counter(name) - before.counter(name);
    };
    EXPECT_EQ(delta("soc.faults.injected"),
              result.reliability.faultsInjected);
    EXPECT_EQ(delta("soc.faults.retries"),
              result.reliability.retriesSpent);
    EXPECT_EQ(delta("soc.faults.host_fallbacks"),
              result.reliability.hostFallbacks);
    EXPECT_EQ(delta("soc.faults.offload_attempts"),
              result.reliability.offloadAttempts);
    // The fault-free reference run inside execute() must not double-count
    // executions: one call, one execution.
    EXPECT_EQ(delta("soc.executions"), 1);
}

TEST(Instrumentation, CompileCacheCountersFlowIntoMetrics)
{
    auto &metrics = obs::MetricsRegistry::global();
    auto &cache = lower::CompileCache::global();
    cache.clear();
    const auto registry = target::standardRegistry();
    const auto &bench = wl::tableIII().front();

    const auto before = metrics.snapshot();
    for (int i = 0; i < 3; ++i) {
        wl::compileBenchmarkCached(bench.source, bench.buildOpts,
                                   registry, bench.domain, cache);
    }
    const auto after = metrics.snapshot();
    EXPECT_EQ(after.counter("compile_cache.misses") -
                  before.counter("compile_cache.misses"),
              1);
    EXPECT_EQ(after.counter("compile_cache.hits") -
                  before.counter("compile_cache.hits"),
              2);
    EXPECT_EQ(cache.coalesced(), 0);
}

} // namespace
} // namespace polymath
