# End-to-end byte-identity check: the same pmc flags must print the same
# stdout/stderr bytes and exit code whether they run locally or through a
# pmcd daemon (`pmc --connect`). Exercises the full lifecycle: start the
# daemon, wait for the socket, round-trip several flag shapes (compile,
# simulate, faults, schedule, profile, multi-file, and a user error),
# then stop it with `pmcd --shutdown`.
#
# usage: service_roundtrip.sh <pmc> <pmcd> <examples-dir>
set -u

PMC=$1
PMCD=$2
EXAMPLES=$3

WORK=$(mktemp -d)
SOCK="$WORK/pmcd.sock"
trap 'kill $DAEMON_PID 2>/dev/null; rm -rf "$WORK"' EXIT

"$PMCD" --socket "$SOCK" -j 2 2>"$WORK/daemon.log" &
DAEMON_PID=$!

# Wait for the daemon to come up (the socket file appears before accept).
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never created $SOCK"; exit 1; }

fail=0

check() {
    name=$1
    shift
    "$PMC" "$@" >"$WORK/local.out" 2>"$WORK/local.err"
    local_code=$?
    "$PMC" --connect "$SOCK" "$@" >"$WORK/remote.out" 2>"$WORK/remote.err"
    remote_code=$?
    if [ "$local_code" != "$remote_code" ]; then
        echo "FAIL: $name: exit $local_code locally, $remote_code via --connect"
        fail=1
    fi
    if ! cmp -s "$WORK/local.out" "$WORK/remote.out"; then
        echo "FAIL: $name: stdout differs"
        diff "$WORK/local.out" "$WORK/remote.out" | head -20
        fail=1
    fi
    if ! cmp -s "$WORK/local.err" "$WORK/remote.err"; then
        echo "FAIL: $name: stderr differs"
        diff "$WORK/local.err" "$WORK/remote.err" | head -20
        fail=1
    fi
}

check compile --target DA "$EXAMPLES/affine.pm"
check simulate --target DA --simulate --invocations 10 "$EXAMPLES/black_scholes.pm"
check optimize --optimize --target RBT --simulate "$EXAMPLES/mobile_robot.pm"
check faults --target DA --simulate --fault-rate 0.1 --fault-seed 7 "$EXAMPLES/affine.pm"
check schedule --target DA --schedule "$EXAMPLES/affine.pm"
check profile --target DA --profile --profile-top 5 "$EXAMPLES/affine.pm"
check multifile --target GA "$EXAMPLES/bfs.pm" "$EXAMPLES/pagerank.pm"
check cross_domain --optimize --target ALL --simulate "$EXAMPLES/brain_stimulation.pm"

# A user error (unknown entry) must render identically and exit 1 on
# both paths.
check bad_entry --target DA --entry nosuch "$EXAMPLES/affine.pm"

# --profile-json must write the same document bytes through either path.
check profile_json --target DA --profile-json "$WORK/p.json" "$EXAMPLES/affine.pm"
"$PMC" --target DA --profile-json "$WORK/local.json" "$EXAMPLES/affine.pm" >/dev/null 2>&1
"$PMC" --connect "$SOCK" --target DA --profile-json "$WORK/remote.json" "$EXAMPLES/affine.pm" >/dev/null 2>&1
if ! cmp -s "$WORK/local.json" "$WORK/remote.json"; then
    echo "FAIL: profile_json: document bytes differ"
    fail=1
fi

"$PMCD" --socket "$SOCK" --shutdown 2>"$WORK/shutdown.log"
if [ $? != 0 ]; then
    echo "FAIL: pmcd --shutdown reported an error"
    cat "$WORK/shutdown.log"
    fail=1
fi
wait $DAEMON_PID
if [ $? != 0 ]; then
    echo "FAIL: daemon exited non-zero"
    cat "$WORK/daemon.log"
    fail=1
fi

[ $fail = 0 ] && echo "PASS: service round-trip byte-identical"
exit $fail
