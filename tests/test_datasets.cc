/**
 * @file
 * Synthetic dataset tests: determinism, statistical shape (R-MAT skew,
 * cluster separation, rating range), and DSP table properties.
 */
#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "workloads/datasets.h"

namespace polymath::wl {
namespace {

TEST(Rmat, DeterministicForSeed)
{
    const auto a = rmatGraph(1 << 10, 4096, 5);
    const auto b = rmatGraph(1 << 10, 4096, 5);
    ASSERT_EQ(a.edgeList.size(), b.edgeList.size());
    EXPECT_TRUE(std::equal(a.edgeList.begin(), a.edgeList.end(),
                           b.edgeList.begin()));
    const auto c = rmatGraph(1 << 10, 4096, 6);
    EXPECT_FALSE(std::equal(a.edgeList.begin(), a.edgeList.end(),
                            c.edgeList.begin()));
}

TEST(Rmat, VerticesInRangeAndCountExact)
{
    const int64_t n = 1 << 12;
    const auto g = rmatGraph(n, 20000, 9);
    EXPECT_EQ(g.edges(), 20000);
    for (const auto &[u, v] : g.edgeList) {
        EXPECT_GE(u, 0);
        EXPECT_LT(u, n);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, n);
    }
}

TEST(Rmat, DegreeDistributionIsSkewed)
{
    const int64_t n = 1 << 12;
    const auto g = rmatGraph(n, 16 * n, 3);
    std::vector<int64_t> degree(static_cast<size_t>(n), 0);
    for (const auto &[u, v] : g.edgeList)
        ++degree[static_cast<size_t>(u)];
    const int64_t max_degree =
        *std::max_element(degree.begin(), degree.end());
    const double mean_degree = 16.0;
    // Power-law-ish: the hub is far above the mean (uniform graphs
    // concentrate near it).
    EXPECT_GT(static_cast<double>(max_degree), mean_degree * 8.0);
}

TEST(Rmat, DenseAdjacencyIsSymmetricZeroDiagonal)
{
    const int64_t n = 24;
    const auto adj = denseRmatAdjacency(n, 4 * n, 8, true);
    for (int64_t u = 0; u < n; ++u) {
        EXPECT_EQ(adj.at({u, u}), 0.0);
        for (int64_t v = 0; v < n; ++v)
            EXPECT_EQ(adj.at({u, v}), adj.at({v, u}));
    }
}

TEST(Clusters, PointsNearTheirGeneratingCenters)
{
    Tensor centers;
    const auto x = gaussianClusters(90, 4, 3, 12, &centers);
    ASSERT_EQ(x.shape(), (Shape{90, 4}));
    for (int64_t i = 0; i < 90; ++i) {
        const int64_t c = i % 3;
        double dist = 0.0;
        for (int64_t d = 0; d < 4; ++d) {
            const double diff = x.at({i, d}) - centers.at({c, d});
            dist += diff * diff;
        }
        EXPECT_LT(std::sqrt(dist), 5.0);
    }
}

TEST(Ratings, InRangeAndLowRankStructure)
{
    const auto r = ratingsMatrix(20, 15, 3, 4);
    for (int64_t i = 0; i < r.numel(); ++i) {
        EXPECT_GE(r.at(i), 0.0);
        EXPECT_LE(r.at(i), 5.0);
    }
}

TEST(LabeledSet, LabelsAreBinaryAndBalancedish)
{
    const auto [x, y] = labeledSet(200, 8, 19);
    int64_t positives = 0;
    for (int64_t i = 0; i < 200; ++i) {
        EXPECT_TRUE(y.at(i) == 0.0 || y.at(i) == 1.0);
        positives += y.at(i) > 0.5;
    }
    EXPECT_GT(positives, 40);
    EXPECT_LT(positives, 160);
    EXPECT_EQ(x.shape(), (Shape{200, 8}));
}

TEST(Twiddle, RootsOfUnity)
{
    const int64_t n = 64;
    const auto tw = twiddleTable(n);
    ASSERT_EQ(tw.numel(), n / 2);
    for (int64_t j = 0; j < n / 2; ++j) {
        EXPECT_NEAR(std::abs(tw.cat(j)), 1.0, 1e-12);
    }
    // tw[n/4] = exp(-i pi/2) = -i.
    EXPECT_NEAR(tw.cat(n / 4).real(), 0.0, 1e-12);
    EXPECT_NEAR(tw.cat(n / 4).imag(), -1.0, 1e-12);
}

TEST(DctBasis, RowsOrthonormal)
{
    const auto c = dctBasis();
    for (int64_t u = 0; u < 8; ++u) {
        for (int64_t v = 0; v < 8; ++v) {
            double dot = 0.0;
            for (int64_t i = 0; i < 8; ++i)
                dot += c.at({u, i}) * c.at({v, i});
            EXPECT_NEAR(dot, u == v ? 1.0 : 0.0, 1e-12);
        }
    }
}

TEST(Signals, ComplexSignalDeterministicAndBounded)
{
    const auto a = complexSignal(128, 4);
    const auto b = complexSignal(128, 4);
    EXPECT_LT(Tensor::maxAbsDiff(a, b), 0.0 + 1e-15);
    for (int64_t i = 0; i < 128; ++i)
        EXPECT_LT(std::abs(a.cat(i)), 10.0);
}

TEST(Options, BatchWithinMarketRanges)
{
    const auto batch = optionBatch(100, 2);
    for (int64_t i = 0; i < 100; ++i) {
        EXPECT_GT(batch.spot.at(i), 0.0);
        EXPECT_GT(batch.strike.at(i), 0.0);
        EXPECT_GT(batch.expiry.at(i), 0.0);
        EXPECT_LT(batch.expiry.at(i), 2.5);
    }
}

TEST(Images, PixelRange)
{
    const auto img = randomImage(16, 16, 6);
    for (int64_t i = 0; i < img.numel(); ++i) {
        EXPECT_GE(img.at(i), 0.0);
        EXPECT_LT(img.at(i), 256.0);
    }
}

} // namespace
} // namespace polymath::wl
