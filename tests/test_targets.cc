/**
 * @file
 * Backend tests: spec registration consistency, cost-model invariants
 * (monotonicity in work, profile scaling, DMA classification), and
 * per-target behaviors (TABLA level scheduling, DECO imbalance,
 * Graphicionado dataset scaling, VTA weight streaming, HyperStreams II=1,
 * CPU/GPU baseline properties).
 */
#include <gtest/gtest.h>

#include "targets/common/backend.h"
#include "targets/cpu/cpu_model.h"
#include "targets/deco/deco.h"
#include "targets/gpu/gpu_model.h"
#include "workloads/suite.h"

namespace polymath::target {
namespace {

using lower::IrFragment;
using lower::Partition;
using lower::TensorArg;

Partition
syntheticPartition(const std::string &accel, int64_t frags,
                   int64_t flops_each, int64_t io_bytes = 4096)
{
    Partition p;
    p.accel = accel;
    for (int64_t i = 0; i < frags; ++i) {
        IrFragment f;
        f.opcode = "kernel" + std::to_string(i);
        f.flops = flops_each;
        TensorArg in;
        in.name = "t" + std::to_string(i);
        in.shape = Shape{8};
        TensorArg out;
        out.name = "t" + std::to_string(i + 1);
        out.shape = Shape{8};
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    TensorArg stream;
    stream.name = "x";
    stream.shape = Shape{io_bytes / 8};
    stream.kind = ir::EdgeKind::Input;
    p.loads.push_back(stream);
    return p;
}

TEST(Registry, AllSixBackendsRegistered)
{
    const auto registry = standardRegistry();
    EXPECT_NE(registry.byName("RoboX"), nullptr);
    EXPECT_NE(registry.byName("Graphicionado"), nullptr);
    EXPECT_NE(registry.byName("TABLA"), nullptr);
    EXPECT_NE(registry.byName("DECO"), nullptr);
    EXPECT_NE(registry.byName("TVM-VTA"), nullptr);
    EXPECT_NE(registry.byName("HyperStreams"), nullptr);
    // Default DA accelerator is TABLA; HyperStreams only via preference.
    EXPECT_EQ(registry.forDomain(lang::Domain::DA)->name, "TABLA");
    EXPECT_EQ(registry.specFor(lang::Domain::DA, ir::Op::intern("black_scholes"))->name,
              "HyperStreams");
    EXPECT_EQ(registry.specFor(lang::Domain::DA, ir::OpCode::Sum)->name, "TABLA");
}

TEST(Registry, EveryDomainHasExactlyOneDefault)
{
    const auto registry = standardRegistry();
    for (lang::Domain d : {lang::Domain::RBT, lang::Domain::GA,
                           lang::Domain::DSP, lang::Domain::DA,
                           lang::Domain::DL}) {
        EXPECT_NE(registry.forDomain(d), nullptr)
            << lang::toString(d);
    }
}

TEST(FragmentLevels, DependencyChainsSequence)
{
    // t0 -> k0 -> t1 -> k1 -> t2: two levels.
    const auto p = syntheticPartition("TABLA", 2, 100);
    const auto levels = fragmentLevels(p);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].size(), 1u);
}

TEST(FragmentLevels, IndependentFragmentsShareALevel)
{
    Partition p;
    for (int i = 0; i < 3; ++i) {
        IrFragment f;
        f.opcode = "k";
        f.flops = 10;
        TensorArg in;
        in.name = "shared";
        TensorArg out;
        out.name = "o" + std::to_string(i);
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    const auto levels = fragmentLevels(p);
    ASSERT_EQ(levels.size(), 1u);
    EXPECT_EQ(levels[0].size(), 3u);
}

TEST(DmaBreakdown, ClassifiesByTypeModifier)
{
    Partition p;
    TensorArg input;
    input.name = "x";
    input.shape = Shape{10};
    input.kind = ir::EdgeKind::Input;
    TensorArg param;
    param.name = "w";
    param.shape = Shape{10};
    param.kind = ir::EdgeKind::Param;
    TensorArg state;
    state.name = "s";
    state.shape = Shape{10};
    state.kind = ir::EdgeKind::State;
    p.loads = {input, param, state};
    const auto dma = dmaBreakdown(p);
    EXPECT_EQ(dma.perRunBytes, 40);   // fp32 accelerator datapath
    EXPECT_EQ(dma.oneTimeBytes, 80);  // param + state placed once
}

class BackendInvariants : public ::testing::TestWithParam<const char *>
{
  protected:
    const Backend *backend()
    {
        backends_ = standardBackends();
        return findBackend(backends_, GetParam());
    }

  private:
    std::vector<std::unique_ptr<Backend>> backends_;
};

TEST_P(BackendInvariants, MoreWorkTakesLonger)
{
    const auto *b = backend();
    ASSERT_NE(b, nullptr);
    WorkloadProfile prof;
    prof.vertices = 1000;
    prof.edges = 8000;
    const auto small = b->simulate(syntheticPartition(b->name(), 4, 1000),
                                   prof);
    const auto large =
        b->simulate(syntheticPartition(b->name(), 4, 100000), prof);
    EXPECT_GT(large.seconds, small.seconds * 0.999);
    EXPECT_GT(large.joules, 0.0);
    EXPECT_GT(small.seconds, 0.0);
}

TEST_P(BackendInvariants, InvocationsScaleTime)
{
    const auto *b = backend();
    ASSERT_NE(b, nullptr);
    WorkloadProfile one;
    one.vertices = 1000;
    one.edges = 8000;
    WorkloadProfile many = one;
    many.invocations = 100;
    const auto p = syntheticPartition(b->name(), 4, 50000);
    const auto t1 = b->simulate(p, one);
    const auto t100 = b->simulate(p, many);
    EXPECT_GT(t100.seconds, t1.seconds * 50.0);
    EXPECT_LE(t100.seconds, t1.seconds * 101.0);
}

TEST_P(BackendInvariants, UtilizationBounded)
{
    const auto *b = backend();
    ASSERT_NE(b, nullptr);
    WorkloadProfile prof;
    prof.vertices = 1000;
    prof.edges = 8000;
    const auto r = b->simulate(syntheticPartition(b->name(), 2, 200000),
                               prof);
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    EXPECT_NEAR(r.watts(), b->machine().watts, b->machine().watts + 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendInvariants,
                         ::testing::Values("RoboX", "TABLA", "DECO",
                                           "TVM-VTA", "HyperStreams",
                                           "Graphicionado"));

TEST(FragmentWork, CountsFlopsPlusMoveElements)
{
    lower::IrFragment frag;
    frag.flops = 100;
    EXPECT_EQ(fragmentWork(frag), 100);
    frag.attrs["move_elems"] = 40;
    EXPECT_EQ(fragmentWork(frag), 140);
}

TEST(InvariantFragments, ParamDerivedChainsMarkedTransitively)
{
    Partition p;
    TensorArg param;
    param.name = "W";
    param.shape = Shape{8};
    param.kind = ir::EdgeKind::Param;
    TensorArg state;
    state.name = "S";
    state.shape = Shape{8};
    state.kind = ir::EdgeKind::State;
    TensorArg input;
    input.name = "x";
    input.shape = Shape{8};
    input.kind = ir::EdgeKind::Input;
    p.loads = {param, state, input};

    auto frag = [](std::string in, std::string out) {
        IrFragment f;
        f.opcode = "k";
        f.flops = 1;
        TensorArg a;
        a.name = std::move(in);
        TensorArg b;
        b.name = std::move(out);
        f.inputs.push_back(a);
        f.outputs.push_back(b);
        return f;
    };
    p.fragments.push_back(frag("W", "w2"));   // param-derived: invariant
    p.fragments.push_back(frag("w2", "w3"));  // transitively invariant
    p.fragments.push_back(frag("S", "s2"));   // state is mutable: not
    p.fragments.push_back(frag("x", "y"));    // input: not
    p.fragments.push_back(frag("w3", "z"));   // invariant again
    const auto marks = invariantFragments(p);
    ASSERT_EQ(marks.size(), 5u);
    EXPECT_TRUE(marks[0]);
    EXPECT_TRUE(marks[1]);
    EXPECT_FALSE(marks[2]);
    EXPECT_FALSE(marks[3]);
    EXPECT_TRUE(marks[4]);
}

TEST(InvariantFragments, RoboxChargesThemOnce)
{
    const auto backends = standardBackends();
    const auto *robox = findBackend(backends, "RoboX");
    Partition p;
    IrFragment concat;
    concat.opcode = "identity";
    concat.flops = 0;
    concat.attrs["move_elems"] = 100000;
    TensorArg w;
    w.name = "W";
    w.shape = Shape{100000};
    w.kind = ir::EdgeKind::Param;
    TensorArg out;
    out.name = "wcat";
    out.shape = Shape{100000};
    concat.inputs.push_back(w);
    concat.outputs.push_back(out);
    p.fragments.push_back(concat);
    p.loads.push_back(w);

    WorkloadProfile one;
    WorkloadProfile thousand;
    thousand.invocations = 1000;
    const auto t1 = robox->simulate(p, one);
    const auto t1000 = robox->simulate(p, thousand);
    // The concat of a param runs once: compute time must not scale with
    // invocations (only per-invocation dispatch overhead does).
    EXPECT_LT(t1000.computeSeconds, t1.computeSeconds * 2.0);
}

TEST(Deco, ImbalancePenalizesLopsidedStages)
{
    DecoBackend deco;
    WorkloadProfile prof;
    // Equal totals (200k), different stage balance.
    auto balanced = syntheticPartition("DECO", 4, 50000);
    auto lopsided = syntheticPartition("DECO", 4, 50000);
    lopsided.fragments[0].flops = 10000;
    lopsided.fragments[1].flops = 20000;
    lopsided.fragments[2].flops = 150000;
    lopsided.fragments[3].flops = 20000;
    EXPECT_NEAR(DecoBackend::stageImbalance(balanced), 1.0, 1e-9);
    EXPECT_GT(DecoBackend::stageImbalance(lopsided), 2.0);
    const auto tb = deco.simulate(balanced, prof);
    const auto tl = deco.simulate(lopsided, prof);
    EXPECT_GT(tl.computeSeconds, tb.computeSeconds);
}

TEST(Graphicionado, ScalesWithDatasetNotInstance)
{
    const auto backends = standardBackends();
    const auto *g = findBackend(backends, "Graphicionado");
    ASSERT_NE(g, nullptr);
    // Same compiled instance, two dataset profiles.
    Partition p;
    IrFragment process;
    process.opcode = "process_edges/sum";
    process.attrs["dim0"] = 48;
    process.attrs["dim1"] = 48;
    process.attrs["reduce_extent"] = 48;
    process.flops = 48 * 48 * 3;
    p.fragments.push_back(process);

    WorkloadProfile small;
    small.vertices = 1 << 16;
    small.edges = 1 << 20;
    WorkloadProfile big = small;
    big.edges = 1 << 24;
    const auto ts = g->simulate(p, small);
    const auto tb = g->simulate(p, big);
    EXPECT_GT(tb.seconds, ts.seconds * 4.0);
}

TEST(Vta, ResidentWeightsAmortizeStreaming)
{
    const auto backends = standardBackends();
    const auto *vta = findBackend(backends, "TVM-VTA");
    ASSERT_NE(vta, nullptr);
    auto layer = [](int64_t weight_elems) {
        Partition p;
        IrFragment f;
        f.opcode = "conv2d";
        f.flops = 1000000;
        TensorArg w;
        w.name = "w";
        w.shape = Shape{weight_elems};
        w.kind = ir::EdgeKind::Param;
        f.inputs.push_back(w);
        TensorArg out;
        out.name = "y";
        out.shape = Shape{64};
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
        return p;
    };
    WorkloadProfile many;
    many.invocations = 100;
    const auto small = vta->simulate(layer(1000), many);
    const auto huge = vta->simulate(layer(30000000), many);
    // Oversized weights re-stream every run: DRAM traffic scales ~100x.
    EXPECT_GT(huge.dramBytes, small.dramBytes * 100);
}

TEST(HyperStreams, InitiationIntervalOne)
{
    const auto backends = standardBackends();
    const auto *hs = findBackend(backends, "HyperStreams");
    ASSERT_NE(hs, nullptr);
    auto batch = [](int64_t options) {
        Partition p;
        IrFragment f;
        f.opcode = "pipeline/black_scholes";
        f.attrs["elements"] = options;
        f.flops = options * 24;
        p.fragments.push_back(std::move(f));
        return p;
    };
    WorkloadProfile prof;
    const auto t1 = hs->simulate(batch(10000), prof);
    const auto t2 = hs->simulate(batch(20000), prof);
    // Pipelined: doubling options less-than-doubles time only by the
    // fill; compute time ratio stays close to 2 but well below a
    // per-option non-pipelined cost model.
    EXPECT_NEAR(t2.computeSeconds / t1.computeSeconds, 2.0, 0.1);
    const double cycles =
        t1.computeSeconds * hs->machine().freqGhz * 1e9;
    EXPECT_LT(cycles, 10000.0 * 1.2); // ~1 option/cycle
}

TEST(CpuModel, RooflineAndEfficiencyOverride)
{
    CpuModel cpu;
    WorkloadCost cost;
    cost.domain = lang::Domain::DA;
    cost.flops = 1000000000;
    cost.bytes = 1000;
    const auto base = cpu.simulate(cost);
    cost.cpuEff = CpuModel::domainEfficiency(lang::Domain::DA, false) / 2;
    const auto slower = cpu.simulate(cost);
    EXPECT_NEAR(slower.seconds / base.seconds, 2.0, 1e-6);

    // Memory roof.
    cost.cpuEff = 0.0;
    cost.bytes = 100ll * 1000 * 1000 * 1000;
    const auto bound = cpu.simulate(cost);
    EXPECT_GT(bound.memorySeconds, bound.computeSeconds);
    EXPECT_EQ(bound.seconds, bound.memorySeconds);
}

TEST(GpuModel, OccupancyThrottlesSmallKernels)
{
    const auto titan = GpuModel::titanXp();
    WorkloadCost cost;
    cost.domain = lang::Domain::DA;
    cost.flops = 100000000;
    cost.bytes = 1000;
    cost.parallelWidth = 64; // tiny kernel
    const auto small = titan.simulate(cost);
    cost.parallelWidth = 1e7; // saturating
    const auto big = titan.simulate(cost);
    EXPECT_GT(small.seconds, big.seconds * 10);
}

TEST(GpuModel, JetsonSaturatesEarlierThanTitan)
{
    WorkloadCost cost;
    cost.domain = lang::Domain::DL;
    cost.flops = 1000000000;
    cost.bytes = 1000;
    cost.parallelWidth = 4096;
    const auto titan = GpuModel::titanXp().simulate(cost);
    const auto jetson = GpuModel::jetson().simulate(cost);
    // At this width Jetson is fully occupied while Titan is not, so the
    // per-flop gap narrows well below the 9x peak ratio.
    EXPECT_LT(titan.seconds, jetson.seconds);
    EXPECT_GT(titan.seconds, jetson.seconds / 9.0);
}

TEST(PerfReport, SpeedupEnergyAndPpwHelpers)
{
    PerfReport a;
    a.seconds = 2.0;
    a.joules = 100.0;
    PerfReport b;
    b.seconds = 1.0;
    b.joules = 10.0;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
    EXPECT_DOUBLE_EQ(energyReduction(a, b), 10.0);
    EXPECT_DOUBLE_EQ(ppwImprovement(a, b), 10.0);
    PerfReport sum = a;
    sum += b;
    EXPECT_DOUBLE_EQ(sum.seconds, 3.0);
    EXPECT_DOUBLE_EQ(sum.joules, 110.0);
}

} // namespace
} // namespace polymath::target
