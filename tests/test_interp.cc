/**
 * @file
 * Interpreter semantics tests: scalar op table, group reductions with
 * Boolean guards, custom reductions, complex arithmetic, index-as-data,
 * state across invocations, and error behavior.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "srdfg/builder.h"
#include "srdfg/ops.h"

namespace polymath {
namespace {

using interp::Interpreter;
using interp::evaluate;

std::map<std::string, Tensor>
run1(const std::string &src, std::map<std::string, Tensor> inputs)
{
    auto g = ir::compileToSrdfg(src);
    return evaluate(*g, inputs);
}

// --- scalar op table (property sweep) --------------------------------------

struct OpCase
{
    const char *expr;
    double a;
    double b;
    double expected;
};

class BinaryOps : public ::testing::TestWithParam<OpCase>
{
};

TEST_P(BinaryOps, MatchesNativeSemantics)
{
    const auto &c = GetParam();
    const std::string src =
        std::string("main(input float a, input float b, output float y) {"
                    " y = ") +
        c.expr + "; }";
    const auto out = run1(src, {{"a", Tensor::scalar(c.a)},
                                {"b", Tensor::scalar(c.b)}});
    EXPECT_NEAR(out.at("y").scalarValue(), c.expected, 1e-12)
        << c.expr << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryOps,
    ::testing::Values(OpCase{"a + b", 2, 3, 5}, OpCase{"a - b", 2, 3, -1},
                      OpCase{"a * b", 2, 3, 6},
                      OpCase{"a / b", 7, 2, 3.5},
                      OpCase{"a ^ b", 2, 10, 1024},
                      OpCase{"min(a, b)", 4, -1, -1},
                      OpCase{"max(a, b)", 4, -1, 4},
                      OpCase{"pow(a, b)", 3, 3, 27}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, BinaryOps,
    ::testing::Values(OpCase{"a < b", 1, 2, 1}, OpCase{"a < b", 2, 1, 0},
                      OpCase{"a <= b", 2, 2, 1},
                      OpCase{"a >= b", 1, 2, 0},
                      OpCase{"a == b", 3, 3, 1},
                      OpCase{"a != b", 3, 3, 0},
                      OpCase{"a && b", 1, 0, 0},
                      OpCase{"a || b", 1, 0, 1}));

INSTANTIATE_TEST_SUITE_P(
    TernaryAndUnary, BinaryOps,
    ::testing::Values(OpCase{"a > b ? a : b", 5, 2, 5},
                      OpCase{"a > b ? a : b", 1, 2, 2},
                      OpCase{"-a + b", 3, 1, -2},
                      OpCase{"!a + b", 0, 0, 1}));

struct FnCase
{
    const char *fn;
    double x;
    double expected;
};

class UnaryFns : public ::testing::TestWithParam<FnCase>
{
};

TEST_P(UnaryFns, MatchesLibm)
{
    const auto &c = GetParam();
    const std::string src =
        std::string("main(input float x, output float y) { y = ") + c.fn +
        "(x); }";
    const auto out = run1(src, {{"x", Tensor::scalar(c.x)}});
    EXPECT_NEAR(out.at("y").scalarValue(), c.expected, 1e-12) << c.fn;
}

INSTANTIATE_TEST_SUITE_P(
    Transcendentals, UnaryFns,
    ::testing::Values(FnCase{"sin", 1.0, std::sin(1.0)},
                      FnCase{"cos", 1.0, std::cos(1.0)},
                      FnCase{"tan", 0.5, std::tan(0.5)},
                      FnCase{"exp", 2.0, std::exp(2.0)},
                      FnCase{"ln", 2.0, std::log(2.0)},
                      FnCase{"sqrt", 9.0, 3.0},
                      FnCase{"abs", -4.0, 4.0},
                      FnCase{"sigmoid", 0.0, 0.5},
                      FnCase{"relu", -2.0, 0.0},
                      FnCase{"relu", 2.0, 2.0},
                      FnCase{"tanh", 0.7, std::tanh(0.7)},
                      FnCase{"erf", 0.3, std::erf(0.3)},
                      FnCase{"sign", -7.0, -1.0},
                      FnCase{"floor", 2.7, 2.0},
                      FnCase{"ceil", 2.2, 3.0},
                      FnCase{"gauss", 2.0, std::exp(-4.0)}));

// --- reductions -------------------------------------------------------------

TEST(Reduce, SumProdMaxMin)
{
    const auto out = run1(
        "main(input float x[4], output float s, output float p,"
        " output float mx, output float mn) {"
        " index i[0:3]; s = sum[i](x[i]); p = prod[i](x[i]);"
        " mx = max[i](x[i]); mn = min[i](x[i]); }",
        {{"x", Tensor::vec({3, -1, 4, 2})}});
    EXPECT_EQ(out.at("s").scalarValue(), 8.0);
    EXPECT_EQ(out.at("p").scalarValue(), -24.0);
    EXPECT_EQ(out.at("mx").scalarValue(), 4.0);
    EXPECT_EQ(out.at("mn").scalarValue(), -1.0);
}

TEST(Reduce, GuardExcludesDiagonal)
{
    Tensor a = Tensor::fromFlat(Shape{3, 3},
                                {9, 1, 2, 3, 9, 4, 5, 6, 9});
    const auto out = run1(
        "main(input float A[3][3], output float s) {"
        " index i[0:2], j[0:2]; s = sum[i][j: j != i](A[i][j]); }",
        {{"A", a}});
    EXPECT_EQ(out.at("s").scalarValue(), 21.0);
}

TEST(Reduce, GuardMayReferenceFreeIndices)
{
    // Lower-triangular row sums: s[i] = sum over j <= i.
    Tensor a = Tensor::fromFlat(Shape{3, 3},
                                {1, 2, 3, 4, 5, 6, 7, 8, 9});
    const auto out = run1(
        "main(input float A[3][3], output float s[3]) {"
        " index i[0:2], j[0:2]; s[i] = sum[j: j <= i](A[i][j]); }",
        {{"A", a}});
    EXPECT_EQ(out.at("s").at(int64_t{0}), 1.0);
    EXPECT_EQ(out.at("s").at(int64_t{1}), 9.0);
    EXPECT_EQ(out.at("s").at(int64_t{2}), 24.0);
}

TEST(Reduce, PartialReductionKeepsFreeAxis)
{
    Tensor a = Tensor::fromFlat(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const auto out = run1("main(input float A[2][3], output float s[2]) {"
                          " index i[0:1], j[0:2];"
                          " s[i] = sum[j](A[i][j]); }",
                          {{"A", a}});
    EXPECT_EQ(out.at("s").at(int64_t{0}), 6.0);
    EXPECT_EQ(out.at("s").at(int64_t{1}), 15.0);
}

TEST(Reduce, CustomReductionFoldsFirstElementAsInit)
{
    const auto out = run1(
        "reduction absmax(a, b) = abs(a) > abs(b) ? a : b;"
        "main(input float x[4], output float m) {"
        " index i[0:3]; m = absmax[i](x[i]); }",
        {{"x", Tensor::vec({3, -7, 5, 1})}});
    EXPECT_EQ(out.at("m").scalarValue(), -7.0);
}

TEST(Reduce, GuardedOutBuiltinMaxReadsZero)
{
    const auto out = run1("main(input float x[3], output float m[3]) {"
                          " index i[0:2], j[0:2];"
                          " m[i] = max[j: j < i](x[j]); }",
                          {{"x", Tensor::vec({5, 2, 9})}});
    // i = 0 has an empty guard set: defined as 0.
    EXPECT_EQ(out.at("m").at(int64_t{0}), 0.0);
    EXPECT_EQ(out.at("m").at(int64_t{1}), 5.0);
    EXPECT_EQ(out.at("m").at(int64_t{2}), 5.0);
}

TEST(Reduce, IndexAsDataInsideBody)
{
    const auto out = run1("main(input float x[4], output float s) {"
                          " index i[0:3]; s = sum[i](x[i]*i); }",
                          {{"x", Tensor::vec({1, 1, 1, 1})}});
    EXPECT_EQ(out.at("s").scalarValue(), 6.0);
}

// --- complex ----------------------------------------------------------------

TEST(Complex, ArithmeticAndConjugate)
{
    Tensor x(DType::Complex, Shape{2});
    x.cat(0) = {1.0, 2.0};
    x.cat(1) = {3.0, -1.0};
    const auto out = run1(
        "main(input complex x[2], output complex y[2],"
        " output float p[2]) {"
        " index i[0:1]; y[i] = x[i]*x[i]; p[i] = re(x[i]*conj(x[i])); }",
        {{"x", x}});
    EXPECT_NEAR(std::abs(out.at("y").cat(0) -
                         std::complex<double>(-3.0, 4.0)),
                0.0, 1e-12);
    EXPECT_NEAR(out.at("p").at(int64_t{0}), 5.0, 1e-12);
    EXPECT_NEAR(out.at("p").at(int64_t{1}), 10.0, 1e-12);
}

TEST(Complex, SumReduction)
{
    Tensor x(DType::Complex, Shape{3});
    x.cat(0) = {1.0, 1.0};
    x.cat(1) = {2.0, -1.0};
    x.cat(2) = {0.5, 0.5};
    const auto out = run1("main(input complex x[3], output complex s) {"
                          " index i[0:2]; s = sum[i](x[i]); }",
                          {{"x", x}});
    EXPECT_NEAR(std::abs(out.at("s").cat(0) -
                         std::complex<double>(3.5, 0.5)),
                0.0, 1e-12);
}

TEST(Complex, MinReductionRejected)
{
    Tensor x(DType::Complex, Shape{2});
    EXPECT_THROW(run1("main(input complex x[2], output complex m) {"
                      " index i[0:1]; m = min[i](x[i]); }",
                      {{"x", x}}),
                 UserError);
}

TEST(Complex, ExpAndSqrtFollowStdComplex)
{
    Tensor x(DType::Complex, Shape{2});
    x.cat(0) = {0.3, 1.2};
    x.cat(1) = {-1.0, 0.5};
    const auto out = run1(
        "main(input complex x[2], output complex e[2],"
        " output complex r[2]) {"
        " index i[0:1]; e[i] = exp(x[i]); r[i] = sqrt(x[i]); }",
        {{"x", x}});
    for (int64_t i = 0; i < 2; ++i) {
        EXPECT_LT(std::abs(out.at("e").cat(i) - std::exp(x.cat(i))),
                  1e-12);
        EXPECT_LT(std::abs(out.at("r").cat(i) - std::sqrt(x.cat(i))),
                  1e-12);
    }
}

TEST(Complex, DivisionMatchesStdComplex)
{
    Tensor a(DType::Complex, Shape{1});
    Tensor b(DType::Complex, Shape{1});
    a.cat(0) = {3.0, -2.0};
    b.cat(0) = {0.5, 1.5};
    const auto out = run1("main(input complex a[1], input complex b[1],"
                          " output complex q[1]) {"
                          " index i[0:0]; q[i] = a[i]/b[i]; }",
                          {{"a", a}, {"b", b}});
    EXPECT_LT(std::abs(out.at("q").cat(0) - a.cat(0) / b.cat(0)), 1e-12);
}

// --- state / invocation semantics --------------------------------------------

TEST(State, CarriesAcrossInvocations)
{
    auto g = ir::compileToSrdfg(
        "main(state float acc, input float x) { acc = acc + x; }");
    Interpreter it(*g);
    it.setInput("acc", Tensor::scalar(0.0));
    it.setInput("x", Tensor::scalar(2.5));
    for (int i = 0; i < 4; ++i)
        it.run();
    EXPECT_EQ(it.output("acc").scalarValue(), 10.0);
    EXPECT_EQ(it.invocations(), 4);
}

TEST(State, PassThroughWhenUnwritten)
{
    auto g = ir::compileToSrdfg(
        "main(state float s[2], input float x, output float y) {"
        " y = s[0] + x; }");
    Interpreter it(*g);
    it.setInput("s", Tensor::vec({7, 8}));
    it.setInput("x", Tensor::scalar(1.0));
    it.run();
    it.run();
    EXPECT_EQ(it.output("y").scalarValue(), 8.0);
}

TEST(State, InnerComponentStateBinding)
{
    auto g = ir::compileToSrdfg(R"(
counter(state float c, input float step) {
    c = c + step;
}
main(state float total, input float dt) {
    RBT: counter(total, dt);
}
)");
    Interpreter it(*g);
    it.setInput("total", Tensor::scalar(100.0));
    it.setInput("dt", Tensor::scalar(5.0));
    it.run();
    it.run();
    EXPECT_EQ(it.output("total").scalarValue(), 110.0);
}

// --- execution statistics vs analytic op counts -------------------------------

TEST(ExecStats, MatchesAnalyticCountExactlyOnGuardFreeGraphs)
{
    // The analytic scalarOpCount() drives every cost model; a real run
    // must count the same operations.
    for (const char *src : {
             "main(input float A[6][7], input float x[7],"
             " output float y[6]) {"
             " index i[0:6], j[0:5]; y[j] = sum[i](A[j][i]*x[i]); }",
             "main(input float x[32], output float y[32]) {"
             " index i[0:31]; y[i] = sigmoid(x[i]*2 + 1); }",
             "main(input float a[4][4], input float b[4][4],"
             " output float c[4][4]) {"
             " index i[0:3], j[0:3], k[0:3];"
             " c[i][j] = sum[k](a[i][k]*b[k][j]); }",
         }) {
        auto g = ir::compileToSrdfg(src);
        interp::ExecStats stats;
        std::map<std::string, Tensor> in;
        for (ir::ValueId v : g->inputs) {
            const auto &md = g->value(v).md;
            Tensor t(DType::Float, md.shape);
            for (int64_t i = 0; i < t.numel(); ++i)
                t.at(i) = 0.5;
            in[md.name] = t;
        }
        evaluate(*g, in, &stats);
        EXPECT_EQ(stats.scalarOps(), g->scalarOpCount()) << src;
    }
}

TEST(ExecStats, GuardsOnlyReduceActualCombines)
{
    auto g = ir::compileToSrdfg(
        "main(input float A[8][8], output float s) {"
        " index i[0:7], j[0:7]; s = sum[i][j: j != i](A[i][j]); }");
    interp::ExecStats stats;
    Tensor a(DType::Float, Shape{8, 8});
    evaluate(*g, {{"A", a}}, &stats);
    // Guards are fully counted; combines cannot exceed the analytic
    // full-domain estimate.
    EXPECT_EQ(stats.guardEvals, 64);
    EXPECT_LE(stats.reduceCombines, g->scalarOpCount());
    EXPECT_EQ(stats.reduceCombines, 55); // 56 surviving elements - 1
}

TEST(ExecStats, AccumulatesAcrossInvocationsAndComponents)
{
    auto g = ir::compileToSrdfg(R"(
step(state float acc[4], input float x[4]) {
    index i[0:3];
    acc[i] = acc[i] + x[i]*2;
}
main(state float acc[4], input float x[4]) {
    RBT: step(acc, x);
}
)");
    interp::Interpreter it(*g);
    it.setInput("acc", Tensor(DType::Float, Shape{4}));
    it.setInput("x", Tensor::vec({1, 2, 3, 4}));
    it.run();
    it.run();
    it.run();
    EXPECT_EQ(it.stats().scalarOps(), 3 * g->scalarOpCount());
}

TEST(ExecStats, MovesTrackedSeparately)
{
    auto g = ir::compileToSrdfg(
        "main(input float x[16], output float y[16]) {"
        " index i[0:15]; y[i] = x[15-i]; }");
    interp::ExecStats stats;
    Tensor x(DType::Float, Shape{16});
    evaluate(*g, {{"x", x}}, &stats);
    EXPECT_EQ(stats.scalarOps(), 0); // a pure reversal is data movement
    EXPECT_EQ(stats.moveElems, 16);
}

// --- errors ------------------------------------------------------------------

TEST(Errors, UnknownInputName)
{
    auto g = ir::compileToSrdfg("main(input float x, output float y) {"
                                " y = x; }");
    Interpreter it(*g);
    EXPECT_THROW(it.setInput("z", Tensor::scalar(1.0)), UserError);
}

TEST(Errors, ShapeMismatchOnBind)
{
    auto g = ir::compileToSrdfg("main(input float x[3], output float y) {"
                                " y = x[0]; }");
    Interpreter it(*g);
    EXPECT_THROW(it.setInput("x", Tensor::vec({1, 2})), UserError);
}

TEST(Errors, UnboundInputAtRun)
{
    auto g = ir::compileToSrdfg("main(input float x, output float y) {"
                                " y = x; }");
    Interpreter it(*g);
    EXPECT_THROW(it.run(), UserError);
    EXPECT_FALSE(it.ready());
}

TEST(Errors, OutOfBoundsGather)
{
    ir::BuildOptions opts;
    opts.paramConsts["k"] = 5;
    auto g = ir::compileToSrdfg(
        "main(input float x[4], param int k, output float y) {"
        " y = x[k]; }",
        opts);
    EXPECT_THROW(evaluate(*g, {{"x", Tensor::vec({1, 2, 3, 4})}}),
                 UserError);
}

} // namespace
} // namespace polymath
