/**
 * @file
 * Tests for service-grade telemetry (docs/OBSERVABILITY.md §"Service
 * telemetry"): the log-linear LatencyHistogram's bounded-error
 * quantiles, the Histogram underflow bucket, the FlightRecorder ring,
 * RateWindow sliding rates, Prometheus text rendering, request-scoped
 * span routing, and — over the real socket — request-id attribution,
 * the dump/metrics verbs, slow-trace retention, and concurrent-request
 * span isolation (each retained trace holds exactly its own spans, with
 * deterministic span counts at any worker count).
 *
 * tools/check.sh runs this binary under ThreadSanitizer too: the
 * per-request thread-local trace sinks, the shared flight recorder, and
 * the metrics registry all race here by construction.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json.h"
#include "lower/compile_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "service/server.h"

namespace polymath {
namespace {

/** Unique socket path per test (the listener unlinks it on close). */
std::string
testSocket(const std::string &tag)
{
    return "/tmp/pm_test_obs_service_" + std::to_string(::getpid()) +
           "_" + tag + ".sock";
}

/** A tiny single-statement program, distinct per @p k. */
std::string
tinySource(int k)
{
    return "main(input float x, output float y) { y = x*" +
           std::to_string(k + 2) + "; }";
}

service::Request
compileRequest(const std::string &source, int64_t id)
{
    service::Request req;
    req.id = id;
    req.verb = service::Verb::Compile;
    req.file = "<test>";
    req.source = source;
    req.target = "DA";
    return req;
}

// ---------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, ExactBelowTheLinearLimit)
{
    obs::LatencyHistogram hist;
    for (int64_t v = 1; v <= 100; ++v)
        hist.observe(v);
    EXPECT_EQ(hist.count(), 100);
    // Nearest-rank over 1..100 is exact in the linear range.
    EXPECT_DOUBLE_EQ(hist.quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 100.0);
    const auto stats = hist.stats();
    EXPECT_EQ(stats.count, 100);
    EXPECT_EQ(stats.sum, 5050);
    EXPECT_EQ(stats.min, 1);
    EXPECT_EQ(stats.max, 100);
    EXPECT_EQ(stats.underflow, 0);
    EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
}

TEST(LatencyHistogram, BoundedRelativeErrorEverywhere)
{
    // Midpoint representation error is at most half a sub-bucket:
    // 1 / (2 * kSubBuckets) < 0.4% relative, at any magnitude.
    const double bound =
        1.0 / (2.0 * obs::LatencyHistogram::kSubBuckets) + 1e-12;
    for (int64_t v = 1; v < (int64_t{1} << 40); v = v * 3 + 7) {
        const int index = obs::LatencyHistogram::bucketIndex(v);
        const int64_t mid = obs::LatencyHistogram::bucketValue(index);
        const double rel = std::abs(static_cast<double>(mid - v)) /
                           static_cast<double>(v);
        EXPECT_LE(rel, bound) << "value " << v << " -> bucket " << index
                              << " midpoint " << mid;
    }
}

TEST(LatencyHistogram, BucketIndexIsMonotonic)
{
    int previous = -1;
    for (int64_t v = 1; v < (int64_t{1} << 24); v = v * 2 - v / 3 + 1) {
        const int index = obs::LatencyHistogram::bucketIndex(v);
        EXPECT_GE(index, previous) << "value " << v;
        EXPECT_LT(index, obs::LatencyHistogram::kBucketCount);
        previous = index;
    }
}

TEST(LatencyHistogram, UnderflowWalksAsZero)
{
    obs::LatencyHistogram hist;
    hist.observe(0);
    hist.observe(-17);
    hist.observe(1000);
    const auto stats = hist.stats();
    EXPECT_EQ(stats.count, 3);
    EXPECT_EQ(stats.underflow, 2);
    // Rank 1 and 2 of 3 are the underflow samples (quantile 0), rank 3
    // is the real one.
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
    const double p999 = hist.quantile(0.999);
    EXPECT_NEAR(p999, 1000.0, 1000.0 * 0.004);
    hist.reset();
    EXPECT_EQ(hist.count(), 0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------
// Histogram underflow bucket

TEST(HistogramUnderflow, NonPositiveSamplesAreAccounted)
{
    obs::MetricsRegistry registry;
    auto &hist = registry.histogram("test.samples");
    hist.observe(0);
    hist.observe(-3);
    hist.observe(42);
    const auto snapshot = registry.snapshot();
    const auto &stats = snapshot.histograms.at("test.samples");
    EXPECT_EQ(stats.count, 3);
    EXPECT_EQ(stats.underflow, 2);
    EXPECT_EQ(stats.min, -3);
    EXPECT_EQ(stats.max, 42);
    EXPECT_EQ(stats.sum, 39);
    EXPECT_NE(snapshot.json().find("\"underflow\":2"), std::string::npos);
    // The flat text dump only mentions underflow when it is non-zero,
    // so underflow-free output stays byte-identical to before.
    obs::MetricsRegistry clean;
    clean.histogram("test.samples").observe(42);
    EXPECT_EQ(clean.snapshot().str().find("underflow"),
              std::string::npos);
    EXPECT_NE(snapshot.str().find("underflow"), std::string::npos);
}

// ---------------------------------------------------------------------
// FlightRecorder / RateWindow

TEST(FlightRecorder, RingKeepsTheLastNOldestFirst)
{
    obs::FlightRecorder recorder(4);
    for (int i = 0; i < 10; ++i) {
        obs::RequestRecord record;
        record.requestId = "r" + std::to_string(i);
        recorder.push(std::move(record));
    }
    EXPECT_EQ(recorder.totalPushed(), 10u);
    const auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].requestId, "r6");
    EXPECT_EQ(records[3].requestId, "r9");
    const auto dump = json::parse(recorder.json());
    EXPECT_EQ(dump.at("capacity").num(), 4.0);
    // "recorded" counts every push, including the six the ring dropped.
    EXPECT_EQ(dump.at("recorded").num(), 10.0);
    EXPECT_EQ(dump.at("records").arr().size(), 4u);
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording)
{
    obs::FlightRecorder recorder(0);
    recorder.push(obs::RequestRecord{});
    EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(RateWindow, SlidingWindowRate)
{
    obs::RateWindow window(10'000'000); // 10 s
    window.mark(0, 5);
    window.mark(0, 5); // coalesces with the previous mark
    EXPECT_DOUBLE_EQ(window.ratePerSecond(0), 1.0); // 10 events / 10 s
    window.mark(5'000'000, 10);
    EXPECT_DOUBLE_EQ(window.ratePerSecond(5'000'000), 2.0);
    // The t=0 marks age out of [t - 10s, t] past t = 10s.
    EXPECT_DOUBLE_EQ(window.ratePerSecond(10'000'001), 1.0);
    EXPECT_DOUBLE_EQ(window.ratePerSecond(15'000'001), 0.0);
}

// ---------------------------------------------------------------------
// Prometheus rendering

TEST(PrometheusText, RendersEveryInstrumentKind)
{
    obs::MetricsRegistry registry;
    registry.counter("service.server.completed").add(3);
    registry.gauge("service.cache.hit_rate").set(0.5);
    registry.histogram("soc.partitions").observe(7);
    auto &lat = registry.latency("service.execute_us");
    lat.observe(100);
    lat.observe(200);
    const std::string text =
        obs::prometheusText(registry.snapshot());

    EXPECT_NE(text.find("# TYPE polymath_service_server_completed "
                        "counter\n"
                        "polymath_service_server_completed 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE polymath_service_cache_hit_rate gauge"),
              std::string::npos);
    EXPECT_NE(text.find("polymath_service_cache_hit_rate 0.5"),
              std::string::npos);
    EXPECT_NE(text.find("polymath_soc_partitions_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("polymath_soc_partitions_sum 7"),
              std::string::npos);
    EXPECT_NE(
        text.find("polymath_service_execute_us{quantile=\"0.5\"}"),
        std::string::npos);
    EXPECT_NE(text.find("polymath_service_execute_us_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("polymath_service_execute_us_sum 300"),
              std::string::npos);

    // Exposition-format hygiene: every line is a comment or
    // `name value` with a [a-zA-Z_:][a-zA-Z0-9_:]* name (labels aside).
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        ASSERT_NE(end, std::string::npos) << "unterminated last line";
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const size_t name_end = line.find_first_of(" {");
        ASSERT_NE(name_end, std::string::npos) << line;
        const std::string name = line.substr(0, name_end);
        EXPECT_EQ(name.rfind("polymath_", 0), 0u) << line;
        for (const char c : name)
            EXPECT_TRUE((c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':')
                << line;
    }
}

// ---------------------------------------------------------------------
// Request-scoped span routing

TEST(RequestTrace, ScopeRoutesSpansAndRestoresOnExit)
{
    // The global recorder stays disabled: only the installed
    // RequestTrace may see these spans.
    obs::RequestTrace outer("outer");
    {
        obs::RequestTraceScope outer_scope(outer);
        { obs::Span span("span:outer", "test"); }
        obs::RequestTrace inner("inner");
        {
            obs::RequestTraceScope inner_scope(inner);
            { obs::Span span("span:inner", "test"); }
        }
        // The outer sink is restored after the nested scope exits.
        { obs::Span span("span:outer2", "test"); }
        ASSERT_EQ(inner.events().size(), 1u);
        EXPECT_EQ(inner.events()[0].name, "span:inner");
    }
    ASSERT_EQ(outer.events().size(), 2u);
    EXPECT_EQ(outer.events()[0].name, "span:outer");
    EXPECT_EQ(outer.events()[1].name, "span:outer2");
    // No scope installed: the span is inactive and records nowhere.
    {
        obs::Span span("span:orphan", "test");
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(outer.events().size(), 2u);
}

// ---------------------------------------------------------------------
// Attribution and the dump/metrics verbs, over the real socket

TEST(ServiceTelemetry, EveryResponseCarriesItsRequestId)
{
    service::ServerConfig config;
    config.socketPath = testSocket("ids");
    config.jobs = 2;
    config.flightEntries = 16;
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    std::set<std::string> seen;
    for (int i = 0; i < 4; ++i) {
        const auto resp = client.call(compileRequest(tinySource(i), i));
        EXPECT_TRUE(resp.ok);
        ASSERT_FALSE(resp.requestId.empty());
        // Server-assigned ids are unique per request.
        EXPECT_TRUE(seen.insert(resp.requestId).second)
            << resp.requestId;
    }
    // A client-supplied id is echoed verbatim, on work and non-work
    // verbs alike.
    auto tagged = compileRequest(tinySource(99), 99);
    tagged.requestId = "client-tag-1";
    EXPECT_EQ(client.call(tagged).requestId, "client-tag-1");
    service::Request stats_req;
    stats_req.verb = service::Verb::Stats;
    stats_req.requestId = "stats-tag";
    EXPECT_EQ(client.call(stats_req).requestId, "stats-tag");

    server.requestStop();
    server.wait();
}

TEST(ServiceTelemetry, DisabledTelemetryKeepsWireBytesIdentical)
{
    lower::CompileCache server_cache;
    service::ServerConfig config;
    config.socketPath = testSocket("plain");
    config.jobs = 2;
    config.cache = &server_cache;
    ASSERT_EQ(config.flightEntries, 0u); // library default: disabled
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    const auto req = compileRequest(tinySource(0), 5);
    const auto remote = client.call(req);
    EXPECT_TRUE(remote.requestId.empty());

    // The server writes exactly Response::json() + "\n"; rendering is
    // byte-stable, so comparing renderings compares wire bytes.
    lower::CompileCache local_cache;
    auto expected = service::runRequestGuarded(req, local_cache);
    expected.id = req.id;
    EXPECT_EQ(remote.json(), expected.json());

    server.requestStop();
    server.wait();
}

TEST(ServiceTelemetry, DumpRetainsSlowTracesWithOnlyOwnSpans)
{
    // A private cold cache: every request actually compiles (the
    // process-global cache may already hold sources other tests used,
    // and a sub-microsecond cache hit would not cross the slow-trace
    // threshold).
    lower::CompileCache server_cache;
    service::ServerConfig config;
    config.socketPath = testSocket("dump");
    config.jobs = 4;
    config.cache = &server_cache;
    config.flightEntries = 64;
    config.slowTraceUs = 1; // everything is "slow"
    service::Server server(config);
    server.start();

    // Two clients pipeline distinct sources so several requests compile
    // concurrently on the 4 workers; each retained trace must still
    // contain exactly the spans of its own request.
    constexpr int kPerClient = 8;
    std::map<std::string, int64_t> sent; // requestId -> req.id
    {
        service::Client a(config.socketPath);
        service::Client b(config.socketPath);
        for (int i = 0; i < kPerClient; ++i) {
            auto ra = compileRequest(tinySource(i), i);
            ra.requestId = "a" + std::to_string(i);
            a.send(ra);
            auto rb = compileRequest(tinySource(100 + i), i);
            rb.requestId = "b" + std::to_string(i);
            b.send(rb);
        }
        for (int i = 0; i < kPerClient; ++i) {
            service::Response ra;
            service::Response rb;
            ASSERT_TRUE(a.recv(ra));
            ASSERT_TRUE(b.recv(rb));
            EXPECT_TRUE(ra.ok);
            EXPECT_TRUE(rb.ok);
        }
    }

    service::Client control(config.socketPath);
    service::Request dump_req;
    dump_req.verb = service::Verb::Dump;
    const auto dump_resp = control.call(dump_req);
    ASSERT_TRUE(dump_resp.ok);
    const auto dump = json::parse(dump_resp.output);
    const auto &records = dump.at("records").arr();
    ASSERT_EQ(records.size(), 2u * kPerClient);

    // Every record retained its trace, and every trace contains exactly
    // one frontend pipeline — the same deterministic span-name counts
    // for every request, regardless of which worker ran it or what ran
    // concurrently. A leaked span from another request would break the
    // counts.
    std::map<std::string, int64_t> expected_counts;
    for (size_t r = 0; r < records.size(); ++r) {
        const auto &record = records[r];
        const std::string id = record.at("id").str();
        EXPECT_EQ(record.at("exit").num(), 0.0) << id;
        const auto &trace = record.at("trace").arr();
        ASSERT_FALSE(trace.empty()) << id;
        std::map<std::string, int64_t> counts;
        for (const auto &event : trace)
            ++counts[event.at("name").str()];
        EXPECT_EQ(counts["pmlang:parse"], 1) << id;
        EXPECT_EQ(counts["lower:compile"], 1) << id;
        if (r == 0)
            expected_counts = counts;
        else
            EXPECT_EQ(counts, expected_counts) << id;
    }

    server.requestStop();
    server.wait();
}

TEST(ServiceTelemetry, FastRequestsKeepOnlyTheScalarSummary)
{
    lower::CompileCache server_cache; // cold: the compile really runs
    service::ServerConfig config;
    config.socketPath = testSocket("fast");
    config.jobs = 1;
    config.cache = &server_cache;
    config.flightEntries = 8;
    ASSERT_EQ(config.slowTraceUs, 0); // default: retain no traces
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    EXPECT_TRUE(client.call(compileRequest(tinySource(0), 0)).ok);
    service::Request dump_req;
    dump_req.verb = service::Verb::Dump;
    const auto dump = json::parse(client.call(dump_req).output);
    const auto &records = dump.at("records").arr();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].at("trace").arr().empty());
    EXPECT_GT(records[0].at("execute_us").num(), 0.0);
    EXPECT_GT(records[0].at("bytes_out").num(), 0.0);
    EXPECT_EQ(records[0].at("backends").str(), "TABLA");

    server.requestStop();
    server.wait();
}

TEST(ServiceTelemetry, MetricsVerbExportsPrometheusAndJson)
{
    service::ServerConfig config;
    config.socketPath = testSocket("metrics");
    config.jobs = 2;
    config.flightEntries = 8;
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    EXPECT_TRUE(client.call(compileRequest(tinySource(0), 0)).ok);
    EXPECT_TRUE(client.call(compileRequest(tinySource(1), 1)).ok);

    service::Request metrics_req;
    metrics_req.verb = service::Verb::Metrics;
    const auto resp = client.call(metrics_req);
    ASSERT_TRUE(resp.ok);
    EXPECT_NE(resp.output.find("# TYPE polymath_service_server_"
                               "completed counter"),
              std::string::npos);
    EXPECT_NE(resp.output.find("polymath_service_server_completed 2"),
              std::string::npos);
    ASSERT_FALSE(resp.metricsJson.empty());
    const auto snapshot = json::parse(resp.metricsJson);
    EXPECT_EQ(snapshot.at("counters")
                  .at("service.server.completed")
                  .num(),
              2.0);
    // Inline verbs (stats/dump/metrics) are answered without entering
    // the work queue, so only the two compiles were offered.
    EXPECT_EQ(snapshot.at("counters").at("service.server.offered").num(),
              2.0);
    // Occupancy-style gauges are present and sane.
    EXPECT_GE(snapshot.at("gauges").at("service.rate.completed_per_s")
                  .num(),
              0.0);

    // Delta scrape: nothing completed since the scrape above, so the
    // completed-counter delta is zero while gauges stay instantaneous.
    service::Request delta_req;
    delta_req.verb = service::Verb::Metrics;
    delta_req.metricsDelta = true;
    EXPECT_TRUE(client.call(delta_req).ok); // baseline scrape
    const auto delta = json::parse(client.call(delta_req).metricsJson);
    EXPECT_EQ(delta.at("counters").at("service.server.completed").num(),
              0.0);

    server.requestStop();
    server.wait();
}

TEST(ServiceTelemetry, DumpWhenDisabledIsAStructuredError)
{
    service::ServerConfig config;
    config.socketPath = testSocket("nodump");
    config.jobs = 1;
    service::Server server(config);
    server.start();

    service::Client client(config.socketPath);
    service::Request dump_req;
    dump_req.verb = service::Verb::Dump;
    const auto resp = client.call(dump_req);
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("flight recorder disabled"),
              std::string::npos);

    server.requestStop();
    server.wait();
}

} // namespace
} // namespace polymath
