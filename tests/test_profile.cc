/**
 * @file
 * Performance-attribution tests: the cost-ledger sums-to-totals
 * invariant across all six backends (synthetic partitions and the full
 * Table III suite), ledger merging under PerfReport::operator+=,
 * profile rendering (table + schema-versioned JSON), locale-safe number
 * formatting, report statistics edge cases, and the bench-artifact
 * compare engine behind tools/bench_compare.
 */
#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <gtest/gtest.h>

#include "core/error.h"
#include "core/strings.h"
#include "report/artifact.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/common/backend.h"
#include "targets/common/cost_ledger.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

using lower::IrFragment;
using lower::Partition;
using lower::TensorArg;
using report::BenchArtifact;
using report::CompareOptions;
using report::compareArtifacts;
using report::MetricDiff;

/** Turns profiling on for one scope; always restores the default-off
 *  state so no other test inherits a ledger-attaching stack. */
class ProfilingGuard
{
  public:
    ProfilingGuard() { target::setProfilingEnabled(true); }
    ~ProfilingGuard() { target::setProfilingEnabled(false); }
};

/** Same synthetic partition shape test_targets.cc drives the cost
 *  models with: a dependency chain of @p frags fragments plus one
 *  streamed input tensor. */
Partition
syntheticPartition(const std::string &accel, int64_t frags,
                   int64_t flops_each)
{
    Partition p;
    p.accel = accel;
    for (int64_t i = 0; i < frags; ++i) {
        IrFragment f;
        f.opcode = "kernel" + std::to_string(i);
        f.flops = flops_each;
        TensorArg in;
        in.name = "t" + std::to_string(i);
        in.shape = Shape{8};
        TensorArg out;
        out.name = "t" + std::to_string(i + 1);
        out.shape = Shape{8};
        f.inputs.push_back(in);
        f.outputs.push_back(out);
        p.fragments.push_back(std::move(f));
    }
    TensorArg stream;
    stream.name = "x";
    stream.shape = Shape{512};
    stream.kind = ir::EdgeKind::Input;
    p.loads.push_back(stream);
    return p;
}

/** Asserts the ledger invariant directly (Backend::simulate already
 *  panics on violation; this pins the tolerance in a test too). */
void
expectSumsToTotals(const target::PerfReport &r)
{
    ASSERT_NE(r.ledger, nullptr) << r.machine;
    const auto sums = r.ledger->totals();
    auto near = [&](const char *what, double sum, double total) {
        const double scale =
            std::max({std::abs(sum), std::abs(total), 1.0});
        EXPECT_LE(std::abs(sum - total), 1e-9 * scale)
            << r.machine << " " << what;
    };
    near("seconds", sums.seconds, r.seconds);
    near("joules", sums.joules, r.joules);
    near("dramBytes", sums.dramBytes, static_cast<double>(r.dramBytes));
    near("flops", sums.flops, static_cast<double>(r.flops));
}

// --- Ledger invariant, per backend ------------------------------------------

class LedgerInvariant : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LedgerInvariant, SumsToTotalsOnSyntheticPartition)
{
    const ProfilingGuard profiling;
    const auto backends = target::standardBackends();
    const auto *b = target::findBackend(backends, GetParam());
    ASSERT_NE(b, nullptr);
    target::WorkloadProfile prof;
    prof.invocations = 7;
    prof.vertices = 1000;
    prof.edges = 8000;
    const auto r =
        b->simulate(syntheticPartition(b->name(), 4, 50000), prof);
    expectSumsToTotals(r);
    EXPECT_FALSE(r.ledger->entries.empty());
    EXPECT_GT(r.ledger->peakFlops, 0.0);
}

TEST_P(LedgerInvariant, DisabledProfilingLeavesReportUntouched)
{
    const auto backends = target::standardBackends();
    const auto *b = target::findBackend(backends, GetParam());
    ASSERT_NE(b, nullptr);
    target::WorkloadProfile prof;
    prof.vertices = 1000;
    prof.edges = 8000;
    const auto p = syntheticPartition(b->name(), 3, 20000);

    const auto plain = b->simulate(p, prof);
    EXPECT_EQ(plain.ledger, nullptr);

    target::PerfReport profiled;
    {
        const ProfilingGuard profiling;
        profiled = b->simulate(p, prof);
    }
    ASSERT_NE(profiled.ledger, nullptr);
    // Attribution is observation, not perturbation: every number (and
    // therefore every rendered report line) is identical either way.
    EXPECT_EQ(plain.str(), profiled.str());
    EXPECT_EQ(plain.seconds, profiled.seconds);
    EXPECT_EQ(plain.joules, profiled.joules);
    EXPECT_EQ(plain.flops, profiled.flops);
    EXPECT_EQ(plain.dramBytes, profiled.dramBytes);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LedgerInvariant,
                         ::testing::Values("RoboX", "TABLA", "DECO",
                                           "TVM-VTA", "HyperStreams",
                                           "Graphicionado"));

// --- Ledger invariant, whole Table III suite --------------------------------

TEST(LedgerSuite, TableIIIPartitionsAllSatisfyInvariant)
{
    const ProfilingGuard profiling;
    const auto registry = target::standardRegistry();
    soc::SocRuntime runtime;
    for (const auto &bench : wl::tableIII()) {
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        // Backend::simulate verifies every ledger internally and panics
        // on violation, so executing the suite is itself the property
        // test; the explicit checks pin the public-API view.
        const auto result = runtime.execute(compiled, bench.profile);
        size_t ledgers = 0;
        for (const auto &part : result.partitions) {
            if (!part.ledger)
                continue;
            ++ledgers;
            expectSumsToTotals(part);
        }
        EXPECT_GT(ledgers, 0u) << bench.id;
        // The end-to-end report carries the merged ledger.
        ASSERT_NE(result.total.ledger, nullptr) << bench.id;
        EXPECT_GE(result.total.ledger->partitionCount, 1) << bench.id;
    }
}

// --- Ledger merging ----------------------------------------------------------

TEST(LedgerMerge, OperatorPlusEqualsBuildsTaggedFreshLedger)
{
    const ProfilingGuard profiling;
    const auto backends = target::standardBackends();
    const auto *tabla = target::findBackend(backends, "TABLA");
    const auto *robox = target::findBackend(backends, "RoboX");
    ASSERT_NE(tabla, nullptr);
    ASSERT_NE(robox, nullptr);
    target::WorkloadProfile prof;
    const auto a = tabla->simulate(syntheticPartition("TABLA", 2, 30000),
                                   prof);
    const auto b = robox->simulate(syntheticPartition("RoboX", 3, 10000),
                                   prof);

    target::PerfReport merged = a;
    const auto aliased = merged.ledger; // copy of `a` shares the ledger
    merged += b;
    // Aliased source ledgers stay untouched; the merge is a fresh object.
    EXPECT_NE(merged.ledger, aliased);
    EXPECT_EQ(aliased->partitionCount, 0);
    ASSERT_NE(merged.ledger, nullptr);
    EXPECT_EQ(merged.ledger->partitionCount, 2);
    EXPECT_EQ(merged.ledger->entries.size(),
              a.ledger->entries.size() + b.ledger->entries.size());
    for (size_t i = 0; i < merged.ledger->entries.size(); ++i) {
        const int expected = i < a.ledger->entries.size() ? 0 : 1;
        EXPECT_EQ(merged.ledger->entries[i].partition, expected) << i;
    }
    expectSumsToTotals(merged);
}

TEST(LedgerMerge, UtilizationIsTimeWeightedAndAssociative)
{
    target::PerfReport a;
    a.seconds = 1.0;
    a.joules = 2.0;
    a.utilization = 0.9;
    target::PerfReport b;
    b.seconds = 3.0;
    b.joules = 1.0;
    b.utilization = 0.1;
    target::PerfReport c;
    c.seconds = 0.5;
    c.joules = 0.25;
    c.utilization = 0.6;

    target::PerfReport left = a;
    left += b;
    left += c;

    target::PerfReport bc = b;
    bc += c;
    target::PerfReport right = a;
    right += bc;

    const double expected =
        (0.9 * 1.0 + 0.1 * 3.0 + 0.6 * 0.5) / (1.0 + 3.0 + 0.5);
    EXPECT_NEAR(left.utilization, expected, 1e-12);
    EXPECT_NEAR(right.utilization, expected, 1e-12);
    EXPECT_NEAR(left.utilization, right.utilization, 1e-12);
    EXPECT_NEAR(left.seconds, right.seconds, 1e-12);
    EXPECT_NEAR(left.joules, right.joules, 1e-12);
}

// --- Rendering ---------------------------------------------------------------

/** Hand-built two-entry profile with to_chars-exact values, for the
 *  golden JSON and the table renderer. */
target::PerfReport
handBuiltProfile()
{
    target::PerfReport r;
    r.machine = "TestAccel";
    r.seconds = 0.5;
    r.joules = 2.5;
    r.computeSeconds = 0.375;
    r.memorySeconds = 0.5;
    r.overheadSeconds = 0.125;
    r.flops = 1000;
    r.dramBytes = 4096;
    r.utilization = 0.25;
    auto ledger = std::make_shared<target::CostLedger>();
    ledger->machine = r.machine;
    ledger->peakFlops = 1e12;
    ledger->dramGBs = 100.0;
    auto &frag = ledger->add("mul(y)", "compute", 0);
    frag.bound = target::BoundClass::Compute;
    frag.seconds = 0.375;
    frag.joules = 1.875;
    frag.flops = 750.0;
    frag.touchedBytes = 64.0;
    auto &dma = ledger->add("dma:per-run streams", "dma");
    dma.bound = target::BoundClass::Memory;
    dma.seconds = 0.125;
    dma.joules = 0.625;
    dma.dramBytes = 4096.0;
    r.ledger = std::move(ledger);
    return r;
}

TEST(ProfileJson, GoldenBytes)
{
    const auto r = handBuiltProfile();
    EXPECT_EQ(
        target::profileJson(r),
        "{\"schema\":\"polymath-profile/1\",\"machine\":\"TestAccel\","
        "\"report\":{\"seconds\":0.5,\"joules\":2.5,"
        "\"computeSeconds\":0.375,\"memorySeconds\":0.5,"
        "\"overheadSeconds\":0.125,\"flops\":1000,\"dramBytes\":4096,"
        "\"utilization\":0.25},"
        "\"roofline\":{\"peakFlops\":1e+12,\"dramGBs\":100},"
        "\"entries\":["
        "{\"label\":\"mul(y)\",\"phase\":\"compute\",\"fragment\":0,"
        "\"bound\":\"compute\",\"seconds\":0.375,\"joules\":1.875,"
        "\"dramBytes\":0,\"flops\":750,\"touchedBytes\":64},"
        "{\"label\":\"dma:per-run streams\",\"phase\":\"dma\","
        "\"fragment\":-1,\"bound\":\"memory\",\"seconds\":0.125,"
        "\"joules\":0.625,\"dramBytes\":4096,\"flops\":0,"
        "\"touchedBytes\":0}]}");
}

TEST(ProfileTable, RanksByTimeAndMarksBounds)
{
    const auto r = handBuiltProfile();
    const auto table = target::profileTable(r, 10);
    EXPECT_NE(table.find("TestAccel profile (2 ledger entries, top 2)"),
              std::string::npos);
    // The fragment (75% of time) outranks the DMA entry (25%).
    EXPECT_LT(table.find("#0 mul(y)"), table.find("dma:per-run streams"));
    EXPECT_NE(table.find("75.0%"), std::string::npos);
    EXPECT_NE(table.find("25.0%"), std::string::npos);
    EXPECT_NE(table.find("compute"), std::string::npos);
    EXPECT_NE(table.find("memory"), std::string::npos);

    target::PerfReport bare;
    bare.machine = "X";
    EXPECT_EQ(target::profileTable(bare),
              "(no cost ledger: profiling was disabled)\n");
}

// --- Locale-safe formatting --------------------------------------------------

/** Pins the global C locale to a comma-decimal locale for one scope.
 *  Skips silently (pinned() == false) when none is installed. */
class CommaLocaleGuard
{
  public:
    CommaLocaleGuard()
    {
        const char *current = std::setlocale(LC_ALL, nullptr);
        saved_ = current ? current : "C";
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR.utf8", "fr_FR", "it_IT.UTF-8", "es_ES.UTF-8"}) {
            if (std::setlocale(LC_ALL, name)) {
                pinned_ = name;
                break;
            }
        }
    }
    ~CommaLocaleGuard() { std::setlocale(LC_ALL, saved_.c_str()); }

    const char *pinned() const { return pinned_; }

  private:
    std::string saved_;
    const char *pinned_ = nullptr;
};

TEST(LocaleSafety, FormatMatchesCLocalePrintfBytes)
{
    // Under the default C locale the to_chars path is specified to match
    // printf exactly; pin that equivalence on representative values.
    const double values[] = {0.0,    1.0,       1.5,     1234.5678,
                             0.0625, 6.02e23,   -3.25,   9.999e-7,
                             0.1,    123456789.0};
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.4g", v);
        EXPECT_EQ(formatG(v, 4), buf) << v;
        std::snprintf(buf, sizeof buf, "%.2f", v);
        EXPECT_EQ(formatF(v, 2), buf) << v;
    }
}

TEST(LocaleSafety, ReportsRenderDotDecimalsUnderCommaLocale)
{
    const CommaLocaleGuard guard;
    if (!guard.pinned())
        GTEST_SKIP() << "no comma-decimal locale installed";

    char probe[32];
    std::snprintf(probe, sizeof probe, "%.1f", 1.5);
    ASSERT_STREQ(probe, "1,5");

    EXPECT_EQ(formatF(1.5, 1), "1.5");
    EXPECT_EQ(formatG(1234.5678, 4), "1235");
    EXPECT_EQ(report::times(2.5), "2.5x");
    EXPECT_EQ(report::percent(0.125), "12.5%");

    // The rendered profile artifacts embed those helpers verbatim, so an
    // entire report line must stay comma-free too.
    const auto r = handBuiltProfile();
    EXPECT_EQ(r.str().find(','), std::string::npos);
    EXPECT_EQ(target::profileJson(r).find("0,"), std::string::npos);
}

// --- Statistics edge cases ---------------------------------------------------

TEST(ReportStats, GeomeanSkipsUnusableEntries)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(report::geomean({}), 0.0);
    const double zeros[] = {0.0, 0.0};
    EXPECT_EQ(report::geomean(zeros), 0.0);
    const double mixed[] = {4.0, 0.0, -2.0, inf, nan, 9.0};
    EXPECT_NEAR(report::geomean(mixed), 6.0, 1e-12); // sqrt(4 * 9)
    const double clean[] = {2.0, 8.0};
    EXPECT_NEAR(report::geomean(clean), 4.0, 1e-12);
}

TEST(ReportStats, ImprovementRatiosUseExplicitZeroConventions)
{
    target::PerfReport slow;
    slow.seconds = 2.0;
    slow.joules = 10.0;
    target::PerfReport fast;
    fast.seconds = 0.5;
    fast.joules = 2.0;
    target::PerfReport free; // zero-cost candidate

    EXPECT_NEAR(target::speedup(slow, fast), 4.0, 1e-12);
    EXPECT_NEAR(target::energyReduction(slow, fast), 5.0, 1e-12);
    EXPECT_TRUE(std::isinf(target::speedup(slow, free)));
    EXPECT_TRUE(std::isinf(target::energyReduction(slow, free)));
    EXPECT_TRUE(std::isinf(target::ppwImprovement(slow, free)));
    EXPECT_EQ(target::speedup(free, free), 1.0);
    EXPECT_EQ(target::energyReduction(free, free), 1.0);
    EXPECT_EQ(target::ppwImprovement(free, free), 1.0);
}

// --- Bench artifacts and the compare engine ----------------------------------

BenchArtifact
sampleArtifact()
{
    BenchArtifact a;
    a.name = "fig7_cpu_comparison";
    a.git = "v1.2-3-gabc";
    a.config = "Release";
    a.jobs = 4;
    a.add("MobileRobot", "speedup", 3.5);
    a.add("FFT-8192", "speedup", 12.25);
    a.add("geomean", "speedup", 6.5625);
    return a;
}

TEST(BenchArtifact, JsonRoundtripsWithSortedRows)
{
    auto a = sampleArtifact();
    // Insertion order is scrambled relative to the sorted output.
    a.metrics.insert(a.metrics.begin(), {"zzz", "seconds", 1.0});
    const auto parsed = BenchArtifact::fromJson(a.json());
    EXPECT_EQ(parsed.name, a.name);
    EXPECT_EQ(parsed.git, a.git);
    EXPECT_EQ(parsed.config, a.config);
    EXPECT_EQ(parsed.jobs, a.jobs);
    ASSERT_EQ(parsed.metrics.size(), 4u);
    EXPECT_EQ(parsed.metrics.front().benchmark, "FFT-8192");
    EXPECT_EQ(parsed.metrics.back().benchmark, "zzz");
    EXPECT_EQ(parsed.json(), a.json());
}

TEST(BenchArtifact, RejectsUnknownSchema)
{
    auto text = sampleArtifact().json();
    const auto pos = text.find("polymath-bench/1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("polymath-bench/1").size(),
                 "polymath-bench/9");
    EXPECT_THROW(BenchArtifact::fromJson(text), UserError);
    EXPECT_THROW(BenchArtifact::fromJson("not json"), UserError);
}

TEST(BenchCompare, IdenticalArtifactsPass)
{
    const auto base = sampleArtifact();
    const auto result = compareArtifacts(base, base);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.compared, 3);
    EXPECT_NE(result.summary().find("within tolerance"),
              std::string::npos);
}

TEST(BenchCompare, PerturbationBeyondToleranceRegresses)
{
    const auto base = sampleArtifact();
    auto current = base;
    current.metrics[0].value *= 1.01; // 1% drift vs 1e-9 default tol
    const auto result = compareArtifacts(base, current);
    EXPECT_FALSE(result.ok());
    int changed = 0;
    for (const auto &d : result.diffs) {
        if (d.status != MetricDiff::Status::Changed)
            continue;
        ++changed;
        EXPECT_EQ(d.benchmark, base.metrics[0].benchmark);
        EXPECT_NEAR(d.relError, 0.01, 1e-3);
        EXPECT_NE(d.str().find("CHANGED"), std::string::npos);
    }
    EXPECT_EQ(changed, 1);
}

TEST(BenchCompare, PerMetricToleranceAbsorbsExpectedJitter)
{
    const auto base = sampleArtifact();
    auto current = base;
    for (auto &m : current.metrics)
        m.value *= 1.01;
    CompareOptions opts;
    opts.metricTol["speedup"] = 0.05;
    EXPECT_TRUE(compareArtifacts(base, current, opts).ok());
    opts.metricTol["speedup"] = 0.001;
    EXPECT_FALSE(compareArtifacts(base, current, opts).ok());
}

TEST(BenchCompare, MissingRowsOnEitherSideFail)
{
    const auto base = sampleArtifact();
    auto fewer = base;
    fewer.metrics.pop_back();
    const auto lost = compareArtifacts(base, fewer);
    EXPECT_FALSE(lost.ok());
    bool saw_missing = false;
    for (const auto &d : lost.diffs)
        saw_missing |= d.status == MetricDiff::Status::MissingInCurrent;
    EXPECT_TRUE(saw_missing);

    auto extra = base;
    extra.add("new-bench", "speedup", 1.0);
    const auto grew = compareArtifacts(base, extra);
    EXPECT_FALSE(grew.ok());
    bool saw_extra = false;
    for (const auto &d : grew.diffs)
        saw_extra |= d.status == MetricDiff::Status::MissingInBaseline;
    EXPECT_TRUE(saw_extra);
}

TEST(BenchCompare, NonFiniteValuesCompareByIdentity)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    BenchArtifact base;
    base.name = "edge";
    base.add("a", "speedup", inf);
    base.add("b", "speedup", nan);

    EXPECT_TRUE(compareArtifacts(base, base).ok());
    // Round-tripping through JSON must preserve the semantics.
    EXPECT_TRUE(
        compareArtifacts(base, BenchArtifact::fromJson(base.json())).ok());

    auto finite = base;
    finite.metrics[0].value = 100.0;
    EXPECT_FALSE(compareArtifacts(base, finite).ok());
    auto negated = base;
    negated.metrics[0].value = -inf;
    EXPECT_FALSE(compareArtifacts(base, negated).ok());
    auto denanned = base;
    denanned.metrics[1].value = 0.0;
    EXPECT_FALSE(compareArtifacts(base, denanned).ok());
}

} // namespace
} // namespace polymath
