/**
 * @file
 * Figure-level regression tests: the bench harness's headline numbers
 * must stay inside the paper-anchored bands recorded in EXPERIMENTS.md.
 * These protect the calibration (machine configs, per-benchmark library
 * efficiencies, backend models) from silent drift when the stack evolves.
 */
#include <gtest/gtest.h>

#include "report/report.h"
#include "soc/soc.h"
#include "targets/cpu/cpu_model.h"
#include "targets/gpu/gpu_model.h"
#include "workloads/python_corpus.h"
#include "workloads/suite.h"

namespace polymath {
namespace {

struct Fig78Data
{
    std::vector<double> cpuSpeedups;
    std::vector<double> cpuEnergy;
    std::vector<double> titanPpw;
    std::vector<double> jetsonRuntime;
    std::map<std::string, double> speedupById;
};

const Fig78Data &
figData()
{
    static const Fig78Data data = [] {
        Fig78Data d;
        const auto registry = target::standardRegistry();
        const target::CpuModel cpu;
        const auto titan = target::GpuModel::titanXp();
        const auto jetson = target::GpuModel::jetson();
        soc::SocRuntime runtime;
        for (const auto &bench : wl::tableIII()) {
            const auto compiled = wl::compileBenchmark(
                bench.source, bench.buildOpts, registry, bench.domain);
            const auto accel = runtime.execute(compiled, bench.profile);
            const auto host = cpu.simulate(bench.cpuCost());
            const auto on_titan = titan.simulate(bench.cpuCost());
            const auto on_jetson = jetson.simulate(bench.cpuCost());
            d.cpuSpeedups.push_back(
                target::speedup(host, accel.total));
            d.cpuEnergy.push_back(
                target::energyReduction(host, accel.total));
            d.titanPpw.push_back(
                target::ppwImprovement(on_titan, accel.total));
            d.jetsonRuntime.push_back(
                target::speedup(on_jetson, accel.total));
            d.speedupById[bench.id] = d.cpuSpeedups.back();
        }
        return d;
    }();
    return data;
}

TEST(Fig7, RuntimeGeomeanInPaperBand)
{
    // Paper: 3.3x. Accept [2.5, 4.5].
    const double geo = report::geomean(figData().cpuSpeedups);
    EXPECT_GT(geo, 2.5);
    EXPECT_LT(geo, 4.5);
}

TEST(Fig7, EnergyGeomeanInPaperBand)
{
    // Paper: 18.1x; our nameplate-power models run hotter. Accept [12, 45].
    const double geo = report::geomean(figData().cpuEnergy);
    EXPECT_GT(geo, 12.0);
    EXPECT_LT(geo, 45.0);
}

TEST(Fig7, PerBenchmarkWinnersMatchThePaper)
{
    const auto &s = figData().speedupById;
    // Accelerator wins comfortably:
    EXPECT_GT(s.at("Hexacopter"), 5.0);
    EXPECT_GT(s.at("MovieL-20M"), 8.0);
    EXPECT_GT(s.at("FFT-16384"), 8.0);
    // Narrow wins:
    EXPECT_GT(s.at("MobileRobot"), 1.0);
    EXPECT_LT(s.at("MobileRobot"), 3.0);
    EXPECT_GT(s.at("DCT-1024"), 1.0);
    EXPECT_LT(s.at("DCT-1024"), 3.0);
    // The CPU wins deep learning runtime (VTA is a low-power part):
    EXPECT_LT(s.at("ResNet-18"), 1.0);
    EXPECT_LT(s.at("MobileNet"), 1.0);
}

TEST(Fig8, PerfPerWattBeatsTitanOnGeomean)
{
    // Paper: 7.2x PPW vs Titan Xp. Accept [3, 10].
    const double geo = report::geomean(figData().titanPpw);
    EXPECT_GT(geo, 3.0);
    EXPECT_LT(geo, 10.0);
}

TEST(Fig8, RuntimeRoughlyParityWithJetson)
{
    // Paper: 1.2x vs Jetson. Accept [0.7, 2.0].
    const double geo = report::geomean(figData().jetsonRuntime);
    EXPECT_GT(geo, 0.7);
    EXPECT_LT(geo, 2.0);
}

TEST(Fig9, AverageOptimalFractionNearPaper)
{
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    std::vector<double> percents;
    for (const auto &bench : wl::tableIII()) {
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        const auto *backend = target::findBackend(backends, bench.accel);
        const auto &partition = compiled.partitions.front();
        const auto poly = backend->simulate(partition, bench.profile);
        const auto opt = backend->simulate(
            wl::optimalPartition(bench, partition), bench.profile);
        const double poly_t = poly.computeSeconds + poly.overheadSeconds;
        const double opt_t = opt.computeSeconds + opt.overheadSeconds;
        percents.push_back(
            poly_t > 0 ? std::min(1.0, opt_t / poly_t) : 1.0);
    }
    // Paper: 83.9% average. Accept [0.72, 0.95].
    const double avg = report::mean(percents);
    EXPECT_GT(avg, 0.72);
    EXPECT_LT(avg, 0.95);
}

TEST(Fig10, CrossDomainBeatsBestSingleDomain)
{
    const auto registry = target::standardRegistry();
    soc::SocRuntime runtime;
    for (const auto &app : wl::tableIV()) {
        const auto compiled = wl::compileBenchmark(
            app.source, app.buildOpts, registry, lang::Domain::None);
        std::map<std::string, double> host_eff;
        for (const auto &kernel : app.kernels)
            host_eff[kernel.accel] = kernel.cpuEff;
        const auto cpu = runtime.execute(compiled, app.profile, {"<none>"},
                                         host_eff);
        double best_single = 0.0;
        std::set<std::string> all;
        for (const auto &kernel : app.kernels) {
            const auto r = runtime.execute(compiled, app.profile,
                                           {kernel.accel}, host_eff);
            best_single = std::max(best_single,
                                   target::speedup(cpu.total, r.total));
            all.insert(kernel.accel);
        }
        const auto full =
            runtime.execute(compiled, app.profile, all, host_eff);
        const double gap =
            target::speedup(cpu.total, full.total) / best_single;
        // Paper: 1.85x / 2.06x. Accept [1.3, 3.0].
        EXPECT_GT(gap, 1.3) << app.id;
        EXPECT_LT(gap, 3.0) << app.id;
        // Communication overhead is a visible but minority share.
        EXPECT_GT(full.communicationFraction(), 0.01) << app.id;
        EXPECT_LT(full.communicationFraction(), 0.35) << app.id;
    }
}

TEST(Fig13, LocAndTimeReductionsFavorPmlang)
{
    std::vector<double> loc;
    std::vector<double> time;
    for (const auto &entry : wl::userStudyCorpus()) {
        loc.push_back(static_cast<double>(entry.pythonLoc()) /
                      static_cast<double>(entry.pmlangLoc()));
        time.push_back(entry.pythonMinutes() / entry.pmlangMinutes());
    }
    // Paper: 2.5x LOC / 1.9x time averages. Accept generous bands.
    EXPECT_GT(report::mean(loc), 1.8);
    EXPECT_LT(report::mean(loc), 3.5);
    EXPECT_GT(report::mean(time), 1.4);
    EXPECT_LT(report::mean(time), 2.8);
}

} // namespace
} // namespace polymath
