#!/usr/bin/env bash
# Tier-1 gate: build + ctest under the default (Release) configuration
# and again under ASan/UBSan (see CMakePresets.json). Run from anywhere;
# operates on the repo root. `tools/check.sh default` or
# `tools/check.sh asan` runs a single configuration.
#
# The ASan pass re-runs the suite twice more to pin down the two
# environment axes the stack promises independence from:
#   1. a comma-decimal locale (LC_ALL=de_DE.UTF-8 or the closest
#      installed equivalent) — parse/serialize must not consult it;
#   2. POLYMATH_JOBS=4 — the parallel suite driver must be sanitizer-
#      clean and produce the same results as serial runs.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 4)"
if [ $# -gt 0 ]; then
    presets=("$@")
else
    presets=(default asan)
fi

# Closest installed comma-decimal locale, empty if none (the in-process
# locale tests GTEST_SKIP themselves in that case, so the run still
# covers everything else).
comma_locale=""
for candidate in de_DE.UTF-8 de_DE.utf8 de_DE fr_FR.UTF-8 fr_FR.utf8 \
                 fr_FR it_IT.UTF-8 it_IT.utf8 es_ES.UTF-8 es_ES.utf8; do
    if locale -a 2>/dev/null | grep -qix "$candidate"; then
        comma_locale="$candidate"
        break
    fi
done

for preset in "${presets[@]}"; do
    echo "== [$preset] configure =="
    cmake --preset "$preset"
    echo "== [$preset] build =="
    cmake --build --preset "$preset" -j "$jobs"
    echo "== [$preset] test =="
    ctest --preset "$preset" -j "$jobs"
    if [ "$preset" = asan ]; then
        if [ -n "$comma_locale" ]; then
            echo "== [$preset] test (LC_ALL=$comma_locale) =="
            LC_ALL="$comma_locale" ctest --preset "$preset" -j "$jobs"
        else
            echo "== [$preset] test (comma locale): none installed, skipped =="
        fi
        echo "== [$preset] test (POLYMATH_JOBS=4) =="
        POLYMATH_JOBS=4 ctest --preset "$preset" -j "$jobs"
    fi
done

echo "check.sh: all configurations passed"
