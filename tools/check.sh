#!/usr/bin/env bash
# Tier-1 gate: build + ctest under the default (Release) configuration,
# again under ASan/UBSan, a focused standalone-UBSan pass over the SoC
# scheduler/fault tests (recovery disabled, so findings fail instead of
# logging), and a focused ThreadSanitizer pass (see CMakePresets.json).
# Run from anywhere; operates on the repo root. `tools/check.sh
# default`, `tools/check.sh asan`, `tools/check.sh ubsan`, or
# `tools/check.sh tsan` runs a single configuration.
# `tools/check.sh tidy` is an opt-in
# extra (not part of the default trio): clang-tidy with the repo's
# .clang-tidy profile (bugprone-* + performance-*) over the compile-path
# core — src/srdfg, src/passes, src/lower, and src/interp; it needs
# clang-tidy on PATH and uses the default preset's exported compile
# database.
#
# The ASan pass re-runs the suite twice more to pin down the two
# environment axes the stack promises independence from:
#   1. a comma-decimal locale (LC_ALL=de_DE.UTF-8 or the closest
#      installed equivalent) — parse/serialize must not consult it;
#   2. POLYMATH_JOBS=4 — the parallel suite driver must be sanitizer-
#      clean and produce the same results as serial runs.
#
# The default pass additionally runs the bench perf gates, a telemetry
# smoke (live pmcd scraped over the wire, docs/OBSERVABILITY.md), and a
# repo-root cleanliness guard.
#
# The TSan pass builds only the concurrency-heavy binaries (test_obs,
# test_obs_service, test_driver, test_service, pmc), runs those tests
# with POLYMATH_JOBS=4
# so the pool, compile cache, service server, and trace recorder race
# under the sanitizer, and smoke-checks that `pmc --trace` emits
# loadable Chrome-trace JSON.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 4)"
if [ $# -gt 0 ]; then
    presets=("$@")
else
    presets=(default asan ubsan tsan)
fi

# Closest installed comma-decimal locale, empty if none (the in-process
# locale tests GTEST_SKIP themselves in that case, so the run still
# covers everything else).
comma_locale=""
for candidate in de_DE.UTF-8 de_DE.utf8 de_DE fr_FR.UTF-8 fr_FR.utf8 \
                 fr_FR it_IT.UTF-8 it_IT.utf8 es_ES.UTF-8 es_ES.utf8; do
    if locale -a 2>/dev/null | grep -qix "$candidate"; then
        comma_locale="$candidate"
        break
    fi
done

for preset in "${presets[@]}"; do
    if [ "$preset" = tidy ]; then
        echo "== [tidy] clang-tidy (src/srdfg src/passes src/lower" \
             "src/interp) =="
        if ! command -v clang-tidy > /dev/null 2>&1; then
            echo "tidy: clang-tidy not on PATH; install it or drop the" \
                 "tidy argument" >&2
            exit 1
        fi
        if [ ! -f build/compile_commands.json ]; then
            cmake --preset default
        fi
        # One process over all TUs keeps the output grouped; the config
        # (check list, warnings-as-errors, header filter) lives in
        # .clang-tidy so editors and CI agree.
        clang-tidy -p build --quiet \
            src/srdfg/*.cc src/passes/*.cc src/lower/*.cc src/interp/*.cc
        continue
    fi
    echo "== [$preset] configure =="
    cmake --preset "$preset"
    if [ "$preset" = ubsan ]; then
        # Standalone UBSan (no ASan shadow memory, recovery disabled):
        # focused on the SoC scheduler and fault-model arithmetic —
        # virtual-time accumulation, exponential backoff shifts, and the
        # seeded hash draws are the paths most likely to hide UB.
        echo "== [$preset] build (test_soc test_resilience test_stream) =="
        cmake --build --preset ubsan -j "$jobs" \
            --target test_soc test_resilience test_stream
        echo "== [$preset] test =="
        ctest --test-dir build-ubsan -j "$jobs" --output-on-failure \
            -R '^(test_soc|test_resilience|test_stream)$'
        continue
    fi
    if [ "$preset" = tsan ]; then
        echo "== [$preset] build (test_obs test_obs_service test_driver" \
             "test_service test_dse pmc) =="
        cmake --build --preset tsan -j "$jobs" \
            --target test_obs test_obs_service test_driver test_service \
            test_dse pmc
        echo "== [$preset] test (POLYMATH_JOBS=4) =="
        POLYMATH_JOBS=4 ctest --test-dir build-tsan -j "$jobs" \
            --output-on-failure \
            -R '^(test_obs|test_obs_service|test_driver|test_service|test_dse)$'
        echo "== [$preset] pmc --trace smoke =="
        trace_json="$(mktemp /tmp/polymath-trace.XXXXXX.json)"
        build-tsan/tools/pmc --trace "$trace_json" \
            examples/pmlang/affine.pm > /dev/null
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            "$trace_json"
        rm -f "$trace_json"
        continue
    fi
    echo "== [$preset] build =="
    cmake --build --preset "$preset" -j "$jobs"
    echo "== [$preset] test =="
    ctest --preset "$preset" -j "$jobs"
    if [ "$preset" = default ]; then
        # Perf-regression gate: re-run the fast bench subset and diff
        # the JSON artifacts against the checked-in baselines. The cost
        # models are deterministic, so any drift is a real change; on
        # failure the fresh artifact is kept for inspection (promote it
        # to bench/baselines/ when the change is intentional).
        echo "== [$preset] bench perf gate =="
        for bench in fig7_cpu_comparison fig9_optimal soc_throughput \
                     dse; do
            artifact="$(mktemp "/tmp/polymath-bench-$bench.XXXXXX.json")"
            "build/bench/bench_$bench" -j4 --json "$artifact" > /dev/null
            if ! build/tools/bench_compare \
                    "bench/baselines/$bench.json" "$artifact"; then
                echo "bench perf gate: $bench regressed;" \
                     "current artifact kept at $artifact" >&2
                exit 1
            fi
            rm -f "$artifact"
        done
        # Compile-path wall-clock gate: unlike the cost models above,
        # bench_compile measures real time, so the tolerance is loose —
        # it only catches gross regressions (e.g. a string-keyed map
        # sneaking back onto the compile path), not scheduler noise.
        echo "== [$preset] compile-path perf gate =="
        artifact="$(mktemp /tmp/polymath-bench-compile.XXXXXX.json)"
        build/bench/bench_compile --reps 3 --json "$artifact" > /dev/null
        if ! build/tools/bench_compare --rel-tol 0.6 \
                bench/baselines/compile_path.json "$artifact"; then
            echo "compile-path perf gate: regressed;" \
                 "current artifact kept at $artifact" >&2
            exit 1
        fi
        rm -f "$artifact"
        # Snapshot-cost gate: Graph::clone() and toJson() are the unit
        # costs behind pass snapshots, the compile cache, and component
        # memoization; wall-clock like bench_compile, so the same loose
        # tolerance applies.
        echo "== [$preset] clone/serialize perf gate =="
        artifact="$(mktemp /tmp/polymath-bench-clone.XXXXXX.json)"
        build/bench/bench_clone_serialize --reps 3 --json "$artifact" \
            > /dev/null
        if ! build/tools/bench_compare --rel-tol 0.6 \
                bench/baselines/clone_serialize.json "$artifact"; then
            echo "clone/serialize perf gate: regressed;" \
                 "current artifact kept at $artifact" >&2
            exit 1
        fi
        rm -f "$artifact"
        # Compile-service gate: bench_service drives a pmcd-style server
        # through the wire protocol (1600 pipelined requests, then an
        # overload flood). Counts, hit rate, and the conservation law
        # are exact; latency/throughput rows measure wall-clock, so they
        # gate loosely like the compile-path gate above.
        echo "== [$preset] service gate =="
        artifact="$(mktemp /tmp/polymath-bench-service.XXXXXX.json)"
        build/bench/bench_service --json "$artifact" > /dev/null
        if ! build/tools/bench_compare \
                --tol p50_ms=0.95 --tol p99_ms=0.95 \
                --tol requests_per_sec=0.95 \
                bench/baselines/service.json "$artifact"; then
            echo "service gate: regressed;" \
                 "current artifact kept at $artifact" >&2
            exit 1
        fi
        rm -f "$artifact"
        # Telemetry smoke: a real pmcd with the flight recorder and
        # slow-trace capture on, driven by two clients over the wire.
        # Asserts the metrics verb parses as both Prometheus text and
        # JSON, the dump verb returns the recorded requests, and the
        # conservation law holds on the shutdown stats.
        echo "== [$preset] telemetry smoke =="
        tele_sock="$(mktemp -u /tmp/polymath-tele.XXXXXX.sock)"
        tele_log="$(mktemp /tmp/polymath-tele.XXXXXX.log)"
        build/tools/pmcd --socket "$tele_sock" --flight-entries 64 \
            --slow-trace-us 1 -j 2 2> "$tele_log" &
        tele_pid=$!
        for _ in $(seq 50); do
            [ -S "$tele_sock" ] && break
            sleep 0.1
        done
        build/tools/pmc --connect "$tele_sock" --target DA \
            examples/pmlang/affine.pm > /dev/null
        build/tools/pmc --connect "$tele_sock" --target DA \
            examples/pmlang/black_scholes.pm > /dev/null
        build/tools/pmc --connect "$tele_sock" --metrics \
            | grep -q '^# TYPE polymath_service_server_completed counter$'
        build/tools/pmc --connect "$tele_sock" --metrics-json \
            | python3 -c "import json,sys; json.load(sys.stdin)"
        build/tools/pmc --connect "$tele_sock" --dump | python3 -c '
import json, sys
d = json.load(sys.stdin)
assert d["recorded"] >= 1, d
assert all(r["id"] for r in d["records"]), d
assert any(r["trace"] for r in d["records"]), "no retained trace"
'
        build/tools/pmcd --socket "$tele_sock" --shutdown 2>&1 \
            | python3 -c '
import sys
stats = {}
for line in sys.stdin:
    parts = line.split()
    if len(parts) == 3 and parts[0] == "pmcd:":
        stats[parts[1]] = float(parts[2])
assert stats["offered"] == stats["completed"] + stats["rejected"], stats
'
        wait "$tele_pid"
        rm -f "$tele_sock" "$tele_log"
        # The telemetry smoke (and every other stage) must not leave
        # stray files — a misparsed `--socket` once left a Unix socket
        # literally named "--shutdown" at the repo root.
        echo "== [$preset] repo-root clean guard =="
        stray="$(git ls-files --others --exclude-standard \
                 | grep -v '/' || true)"
        if [ -n "$stray" ]; then
            echo "repo-root clean guard: untracked files at the repo" \
                 "root: $stray" >&2
            exit 1
        fi
    fi
    if [ "$preset" = asan ]; then
        if [ -n "$comma_locale" ]; then
            echo "== [$preset] test (LC_ALL=$comma_locale) =="
            LC_ALL="$comma_locale" ctest --preset "$preset" -j "$jobs"
        else
            echo "== [$preset] test (comma locale): none installed, skipped =="
        fi
        echo "== [$preset] test (POLYMATH_JOBS=4) =="
        POLYMATH_JOBS=4 ctest --preset "$preset" -j "$jobs"
    fi
done

echo "check.sh: all configurations passed"
