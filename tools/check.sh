#!/usr/bin/env bash
# Tier-1 gate: build + ctest under the default (Release) configuration
# and again under ASan/UBSan (see CMakePresets.json). Run from anywhere;
# operates on the repo root. `tools/check.sh default` or
# `tools/check.sh asan` runs a single configuration.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 4)"
if [ $# -gt 0 ]; then
    presets=("$@")
else
    presets=(default asan)
fi

for preset in "${presets[@]}"; do
    echo "== [$preset] configure =="
    cmake --preset "$preset"
    echo "== [$preset] build =="
    cmake --build --preset "$preset" -j "$jobs"
    echo "== [$preset] test =="
    ctest --preset "$preset" -j "$jobs"
done

echo "check.sh: all configurations passed"
