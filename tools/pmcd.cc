/**
 * @file
 * pmcd — the PolyMath compile-service daemon (docs/SERVICE.md).
 *
 * Serves compile/simulate/profile requests over a Unix-domain socket,
 * sharing one process-wide CompileCache and Op interner across every
 * request so the pipeline cost of a repeated source is paid once per
 * daemon lifetime instead of once per process. `pmc --connect <socket>`
 * is the matching client; bench_service is the load generator.
 *
 * The daemon runs until it receives a `shutdown` request (which drains
 * all queued and in-flight work first). `pmcd --shutdown` sends one.
 *
 * Telemetry (docs/OBSERVABILITY.md §"Service telemetry") is on by
 * default: the last --flight-entries completed requests are kept in the
 * flight recorder (dump verb / `pmc --connect <s> --dump`), requests
 * slower than --slow-trace-us retain their full span trace, and SIGUSR1
 * dumps the flight recorder to stderr without disturbing the server —
 * as does shutdown. `--flight-entries 0` turns all of it off and the
 * wire protocol is byte-identical to the pre-telemetry daemon.
 */
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <charconv>
#include <cstdio>
#include <string>
#include <thread>

#include "core/error.h"
#include "core/thread_pool.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using namespace polymath;

void
usage()
{
    std::fputs(
        "usage: pmcd --socket <path> [options]\n"
        "\n"
        "  --socket <path>       Unix-domain socket to listen on\n"
        "                        (required)\n"
        "  -j, --jobs <n>        worker threads executing requests\n"
        "                        (0 = all hardware threads; default\n"
        "                        POLYMATH_JOBS or 1)\n"
        "  --max-pending <n>     admission bound on the queued request\n"
        "                        backlog across all clients; past it\n"
        "                        requests are rejected with an\n"
        "                        accounted, structured response\n"
        "                        (default 256; 0 = unbounded)\n"
        "  --cache-entries <n>   LRU-bound the shared compile cache to\n"
        "                        n programs (default\n"
        "                        POLYMATH_CACHE_ENTRIES or unbounded)\n"
        "  --flight-entries <n>  keep the last n request records for\n"
        "                        the dump verb / SIGUSR1 / shutdown\n"
        "                        dumps (default 256; 0 disables\n"
        "                        request telemetry entirely)\n"
        "  --slow-trace-us <n>   retain the full span trace of\n"
        "                        requests that execute longer than n\n"
        "                        microseconds (default 0 = none)\n"
        "  --shutdown            act as a client instead: send a\n"
        "                        shutdown request to the daemon at\n"
        "                        --socket, print its final stats, exit\n",
        stderr);
}

int64_t
parseCount(const std::string &flag, const std::string &text)
{
    int64_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || value < 0)
        fatal(flag + " expects a non-negative integer (got '" + text +
              "')");
    return value;
}

int
run(int argc, char **argv)
{
    service::ServerConfig config;
    config.jobs = core::defaultJobs();
    config.flightEntries = 256; // service-grade default; 0 disables
    bool shutdown = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value after " + arg);
            // A following option means the value was forgotten:
            // `pmcd --socket --shutdown` must not listen on a socket
            // file literally named "--shutdown" (it once did, leaving
            // a stray socket in the working directory).
            const std::string value = argv[i];
            if (value.rfind("--", 0) == 0)
                fatal("missing value after " + arg + " (got option '" +
                      value + "')");
            return value;
        };
        if (arg == "--socket") {
            config.socketPath = next();
        } else if (arg == "-j" || arg == "--jobs") {
            config.jobs =
                static_cast<int>(parseCount("--jobs", next()));
        } else if (arg == "--max-pending") {
            config.maxPending =
                static_cast<int>(parseCount("--max-pending", next()));
        } else if (arg == "--cache-entries") {
            config.cacheEntries = static_cast<size_t>(
                parseCount("--cache-entries", next()));
        } else if (arg == "--flight-entries") {
            config.flightEntries = static_cast<size_t>(
                parseCount("--flight-entries", next()));
        } else if (arg == "--slow-trace-us") {
            config.slowTraceUs = parseCount("--slow-trace-us", next());
        } else if (arg == "--shutdown") {
            shutdown = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            fatal("unknown option " + arg);
        }
    }
    if (config.socketPath.empty()) {
        usage();
        return 2;
    }

    if (shutdown) {
        service::Client client(config.socketPath);
        service::Request request;
        request.verb = service::Verb::Shutdown;
        const auto response = client.call(request);
        for (const auto &[name, value] : response.stats)
            std::fprintf(stderr, "pmcd: %-16s %.6g\n", name.c_str(),
                         value);
        return response.ok ? 0 : 1;
    }

    // SIGUSR1 => dump the flight recorder to stderr, live. Handled on
    // a dedicated sigwait thread: the signal is blocked process-wide
    // first (worker/reader threads inherit the mask), so the dump runs
    // in a normal thread context — no async-signal-safety gymnastics.
    sigset_t usr1;
    sigemptyset(&usr1);
    sigaddset(&usr1, SIGUSR1);
    pthread_sigmask(SIG_BLOCK, &usr1, nullptr);

    service::Server server(config);
    server.start();

    std::atomic<bool> exiting{false};
    std::thread dumper([&server, &exiting, usr1] {
        for (;;) {
            int sig = 0;
            if (sigwait(&usr1, &sig) != 0)
                return;
            if (exiting.load(std::memory_order_acquire))
                return; // self-signal below: time to join
            const std::string dump = server.flightDumpJson();
            if (dump.empty()) {
                std::fputs("pmcd: flight recorder disabled\n", stderr);
            } else {
                std::fprintf(stderr, "pmcd: flight dump\n%s\n",
                             dump.c_str());
            }
        }
    });

    std::fprintf(stderr,
                 "pmcd: listening on %s (jobs=%d, max-pending=%d, "
                 "flight-entries=%zu, slow-trace-us=%lld)\n",
                 config.socketPath.c_str(), config.jobs,
                 config.maxPending, config.flightEntries,
                 static_cast<long long>(config.slowTraceUs));
    server.wait();
    exiting.store(true, std::memory_order_release);
    pthread_kill(dumper.native_handle(), SIGUSR1);
    dumper.join();
    const std::string dump = server.flightDumpJson();
    if (!dump.empty())
        std::fprintf(stderr, "pmcd: flight dump\n%s\n", dump.c_str());
    const auto stats = server.stats();
    std::fprintf(stderr,
                 "pmcd: shut down; offered=%lld completed=%lld "
                 "rejected=%lld malformed=%lld\n",
                 static_cast<long long>(stats.offered),
                 static_cast<long long>(stats.completed),
                 static_cast<long long>(stats.rejected),
                 static_cast<long long>(stats.malformed));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const polymath::UserError &e) {
        std::fprintf(stderr, "pmcd: error: %s\n", e.message().c_str());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pmcd: internal error: %s\n", e.what());
        return 2;
    }
}
