/**
 * @file
 * pmdse: the design-space autotuner CLI (docs/DSE.md).
 *
 *   pmdse [options] [workload-id...]
 *
 * Sweeps each Table III workload's accelerator over its machine-config
 * design space (src/dse/), prints the per-workload Pareto front with
 * cost-ledger phase attribution, and closes with the "best config per
 * workload" table. `--json` additionally writes the schema-versioned
 * `polymath-dse/1` artifact. The search is deterministic: the same seed
 * produces byte-identical artifacts at any `-jN`.
 */
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"
#include "dse/artifact.h"
#include "dse/dse.h"
#include "lower/compile_cache.h"
#include "report/artifact.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

struct Options
{
    dse::SearchOptions search;
    std::string jsonPath;
    std::vector<std::string> ids; ///< empty = whole Table III suite
};

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: pmdse [options] [workload-id...]\n"
        "\n"
        "Autotunes the Table III workloads over their accelerators'\n"
        "machine-config design spaces and reports the Pareto front\n"
        "(runtime vs. performance per watt) per workload. With no\n"
        "workload ids, the whole suite runs.\n"
        "\n"
        "  -j, --jobs N      evaluation fan-out (0 = all hardware\n"
        "                    threads; results are identical at any N)\n"
        "  --space KIND      config space: small | full (default full)\n"
        "  --search DRIVER   auto | grid | random (default auto: grid\n"
        "                    when the budget covers the space)\n"
        "  --samples N       random driver's first-round budget\n"
        "                    (default 48)\n"
        "  --rounds N        random driver's halving/refinement rounds\n"
        "                    (default 3)\n"
        "  --seed N          search seed (default 0x5eed)\n"
        "  --json FILE       also write the polymath-dse/1 artifact\n"
        "  -h, --help        this text\n");
}

int64_t
parseCount(const char *text, const char *flag)
{
    int64_t value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec != std::errc{} || ptr != end || value < 1)
        fatal(std::string(flag) + " expects a positive integer (got '" +
              text + "')");
    return value;
}

uint64_t
parseSeed(const char *text)
{
    uint64_t value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec != std::errc{} || ptr != end)
        fatal(std::string("--seed expects a non-negative integer (got '") +
              text + "')");
    return value;
}

const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc)
        fatal(std::string("missing value after ") + flag);
    return argv[++i];
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    opts.search.space = dse::ConfigSpace::Kind::Full;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
            usage(stdout);
            std::exit(0);
        } else if (!std::strcmp(arg, "-j") || !std::strcmp(arg, "--jobs")) {
            const char *value = flagValue(argc, argv, i, arg);
            int64_t jobs = 0;
            const char *end = value + std::strlen(value);
            const auto [ptr, ec] = std::from_chars(value, end, jobs);
            if (ec != std::errc{} || ptr != end || jobs < 0)
                fatal(std::string(arg) +
                      " expects a non-negative integer (got '" + value +
                      "')");
            opts.search.jobs = static_cast<int>(jobs);
        } else if (!std::strcmp(arg, "--space")) {
            opts.search.space = dse::ConfigSpace::kindFromString(
                flagValue(argc, argv, i, arg));
        } else if (!std::strcmp(arg, "--search")) {
            opts.search.driver = dse::SearchOptions::driverFromString(
                flagValue(argc, argv, i, arg));
        } else if (!std::strcmp(arg, "--samples")) {
            opts.search.samples =
                parseCount(flagValue(argc, argv, i, arg), arg);
        } else if (!std::strcmp(arg, "--rounds")) {
            opts.search.rounds =
                parseCount(flagValue(argc, argv, i, arg), arg);
        } else if (!std::strcmp(arg, "--seed")) {
            opts.search.seed = parseSeed(flagValue(argc, argv, i, arg));
        } else if (!std::strcmp(arg, "--json")) {
            opts.jsonPath = flagValue(argc, argv, i, arg);
        } else if (arg[0] == '-') {
            fatal(std::string("unknown flag '") + arg +
                  "' (try --help)");
        } else {
            opts.ids.push_back(arg);
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        const auto registry = target::standardRegistry();

        // Resolve the workload list up front so a typo fails before any
        // compilation (benchmarkById throws UserError on unknown ids).
        std::vector<const wl::Benchmark *> suite;
        if (opts.ids.empty()) {
            for (const auto &bench : wl::tableIII())
                suite.push_back(&bench);
        } else {
            for (const auto &id : opts.ids)
                suite.push_back(&wl::benchmarkById(id));
        }

        // Compile once per workload through the shared cache; the DSE
        // fan-out reuses the same immutable program for every config.
        auto &cache = lower::CompileCache::global();
        const auto programs = core::parallelMap(
            opts.search.jobs, static_cast<int64_t>(suite.size()),
            [&](int64_t i) {
                const auto &bench = *suite[static_cast<size_t>(i)];
                return wl::compileBenchmarkCached(bench.source,
                                                  bench.buildOpts, registry,
                                                  bench.domain, cache);
            });

        std::vector<dse::WorkloadStudy> studies;
        for (size_t i = 0; i < suite.size(); ++i) {
            const auto &bench = *suite[i];
            studies.push_back(dse::explore(
                bench.id, bench.accel,
                dse::partitionsFor(*programs[i], bench.accel),
                bench.profile, opts.search));
            std::printf("%s\n", dse::frontTable(studies.back()).c_str());
        }
        std::printf("best configs:\n%s",
                    dse::bestTable(studies).c_str());

        if (!opts.jsonPath.empty()) {
            dse::DseArtifact artifact;
            artifact.name = "pmdse";
            artifact.git = report::buildGitDescribe();
            artifact.config = report::buildConfig();
            artifact.space =
                dse::ConfigSpace::toString(opts.search.space);
            artifact.search =
                dse::SearchOptions::toString(opts.search.driver);
            artifact.seed = opts.search.seed;
            artifact.samples = opts.search.samples;
            artifact.rounds = opts.search.rounds;
            for (const auto &study : studies)
                artifact.workloads.push_back(dse::toStudy(study));
            artifact.write(opts.jsonPath);
        }
        return 0;
    } catch (const UserError &e) {
        std::fprintf(stderr, "pmdse: %s\n", e.message().c_str());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pmdse: %s\n", e.what());
        return 2;
    }
}
