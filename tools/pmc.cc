/**
 * @file
 * pmc — the PolyMath compiler driver.
 *
 * Compiles one or more PMLang files through any prefix of the stack and
 * prints the result: the srDFG at all granularities, Graphviz, statistics,
 * the per-accelerator IR after Algorithms 1/2, or a simulated execution on
 * the SoC. With several inputs the files compile in parallel (`-j N` /
 * `POLYMATH_JOBS`), but stdout/stderr are emitted in input order so output
 * never depends on the jobs count. `pmc --help` documents the flags;
 * examples/pmlang/ has inputs.
 *
 * With `--connect <socket>` pmc turns into a client of the pmcd compile
 * service (docs/SERVICE.md): each input becomes one request, and the
 * printed bytes are identical to local execution — both sides run the
 * same service::runRequest().
 */
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"
#include "core/thread_pool.h"
#include "lower/compile_cache.h"
#include "lower/lower.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pmlang/format.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "passes/pass.h"
#include "service/client.h"
#include "service/exec.h"
#include "soc/soc.h"
#include "soc/stream.h"
#include "targets/common/cost_ledger.h"
#include "srdfg/builder.h"
#include "srdfg/printer.h"
#include "srdfg/serialize.h"
#include "workloads/suite.h"

namespace {

using namespace polymath;

struct Options
{
    std::vector<std::string> files;
    std::string entry = "main";
    std::map<std::string, int64_t> params;
    bool printIr = false;
    bool dot = false;
    bool json = false;
    bool formatSource = false;
    bool stats = false;
    bool optimize = false;
    std::string target;   // domain keyword, e.g. "DA"
    bool simulate = false;
    bool schedule = false;
    bool profile = false;
    bool dse = false;
    std::string dseSpace = "small";
    std::string dseSearch = "auto";
    int64_t dseSamples = 48;
    int64_t dseRounds = 3;
    uint64_t dseSeed = 0x5eed;
    std::string profileJsonPath;
    int64_t profileTopN = 10;
    int64_t invocations = 1;
    bool listTargets = false;
    double faultRate = 0.0;
    uint64_t faultSeed = 0x5eed;
    int jobs = 1;
    std::string tracePath;
    std::string connectPath; ///< pmcd socket; empty = local execution
    bool dump = false;       ///< --connect: fetch the flight recorder
    bool metrics = false;    ///< --connect: scrape live metrics
    bool metricsJson = false;  ///< print the JSON snapshot instead
    bool metricsDelta = false; ///< since-last-scrape deltas
    std::string requestId;   ///< --connect: client-chosen attribution id
    int64_t streamJobs = 0; ///< 0 = sequential --simulate
    std::string arrival = "closed:4";
    int64_t streamMaxPending = 0;
    double deadlineFactor = 0.0;
    std::string deadlinePolicy = "continue";
};

void
usage()
{
    std::fputs(
        "usage: pmc [options] <file.pm ... | ->\n"
        "\n"
        "  --entry <name>        entry component (default: main)\n"
        "  --param <name>=<int>  bind a scalar param at compile time\n"
        "                        (repeatable)\n"
        "  --print-ir            print the srDFG (all recursion levels)\n"
        "  --dot                 print Graphviz for the top levels\n"
        "  --json                print the srDFG as JSON\n"
        "  --format              pretty-print the program canonically\n"
        "  --stats               print node/depth/op statistics\n"
        "  --optimize            run the standard pass pipeline first\n"
        "  --target <DOMAIN>     lower + translate for the domain's\n"
        "                        accelerator (RBT|GA|DSP|DA|DL, or ALL to\n"
        "                        honor per-statement annotations) and\n"
        "                        print the accelerator program(s)\n"
        "  --simulate            with --target: simulate on the SoC\n"
        "  --schedule            with --target DA/DSP: print the PE list\n"
        "                        schedule / DSP chain mapping\n"
        "  --profile             with --target: simulate with per-fragment\n"
        "                        cost ledgers and print a hotspot/roofline\n"
        "                        table per partition (implies --simulate)\n"
        "  --profile-top <n>     rows per hotspot table (default 10)\n"
        "  --profile-json <out>  write the full profile (report totals +\n"
        "                        every ledger entry) as JSON; single input\n"
        "                        only\n"
        "  --dse                 with --target: autotune the machine\n"
        "                        configs of the compiled accelerators and\n"
        "                        print the Pareto fronts (docs/DSE.md;\n"
        "                        pmdse is the full-featured driver)\n"
        "  --dse-space <kind>    with --dse: small|full (default small)\n"
        "  --dse-search <drv>    with --dse: auto|grid|random\n"
        "  --dse-samples <n>     with --dse: random-search sample budget\n"
        "  --dse-rounds <n>      with --dse: successive-halving rounds\n"
        "  --dse-seed <n>        with --dse: non-negative search seed\n"
        "  --invocations <n>     invocation count for --simulate\n"
        "  --fault-rate <r>      with --simulate: inject accelerator/DMA/\n"
        "                        watchdog faults at rate r in [0,1] and\n"
        "                        print the reliability report\n"
        "  --fault-seed <n>      non-negative seed for deterministic\n"
        "                        fault injection\n"
        "  --stream <n>          with --target: stream n jobs of the\n"
        "                        compiled program through the SoC's\n"
        "                        event-driven scheduler (implies\n"
        "                        --simulate) and print the stream report\n"
        "  --arrival <spec>      with --stream: poisson:RATE (jobs/s) or\n"
        "                        closed:CLIENTS[:THINK_S]\n"
        "                        (default closed:4)\n"
        "  --max-pending <n>     with --stream: admission bound override\n"
        "                        (default: SocConfig.streamMaxPending)\n"
        "  --deadline-factor <f> with --stream: per-job deadline = f x the\n"
        "                        job's fault-free estimate (0 = none)\n"
        "  --deadline-policy <p> with --stream: continue|shed|abort\n"
        "                        (default continue)\n"
        "  --connect <socket>    send the work to a pmcd daemon at this\n"
        "                        Unix socket instead of compiling\n"
        "                        locally (requires --target; output is\n"
        "                        byte-identical to local execution)\n"
        "  --dump                with --connect: print the daemon's\n"
        "                        flight recorder (the last N request\n"
        "                        records + retained slow traces) as JSON\n"
        "  --metrics             with --connect: print the daemon's live\n"
        "                        metrics as Prometheus text exposition\n"
        "  --metrics-json        with --connect: print the metrics\n"
        "                        snapshot as JSON instead\n"
        "  --metrics-delta       with --metrics/--metrics-json: report\n"
        "                        deltas since the last delta scrape\n"
        "  --request-id <id>     with --connect: tag the work requests\n"
        "                        with this attribution id (default:\n"
        "                        server-assigned)\n"
        "  -j, --jobs <n>        compile multiple inputs with n worker\n"
        "                        threads (0 = all hardware threads;\n"
        "                        default POLYMATH_JOBS or 1); output stays\n"
        "                        in input order\n"
        "  --trace <out.json>    record a Chrome-trace/Perfetto timeline\n"
        "                        of the run (wall-clock compile spans plus\n"
        "                        the simulated SoC's virtual timeline);\n"
        "                        with --stats and several inputs, also\n"
        "                        print cache and per-pass timing summaries\n"
        "                        to stderr\n"
        "  --list-targets        print the registered accelerators\n",
        stderr);
}

// Numeric flags parse with from_chars: locale-independent by
// specification, unlike the stoll/stod family (DESIGN.md §"Locale").

int64_t
parseInt(const std::string &flag, const std::string &text)
{
    int64_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        fatal(flag + " expects an integer (got '" + text + "')");
    return value;
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    double value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        fatal(flag + " expects a number (got '" + text + "')");
    return value;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    opts.jobs = core::defaultJobs();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--entry") {
            opts.entry = next();
        } else if (arg == "--param") {
            const auto binding = next();
            const auto eq = binding.find('=');
            if (eq == std::string::npos)
                fatal("--param expects name=value");
            opts.params[binding.substr(0, eq)] =
                parseInt("--param", binding.substr(eq + 1));
        } else if (arg == "--print-ir") {
            opts.printIr = true;
        } else if (arg == "--dot") {
            opts.dot = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--format") {
            opts.formatSource = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--optimize") {
            opts.optimize = true;
        } else if (arg == "--target") {
            opts.target = next();
        } else if (arg == "--simulate") {
            opts.simulate = true;
        } else if (arg == "--schedule") {
            opts.schedule = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--profile-top") {
            opts.profileTopN = parseInt("--profile-top", next());
            if (opts.profileTopN < 1)
                fatal("--profile-top expects a positive integer");
        } else if (arg == "--profile-json") {
            opts.profileJsonPath = next();
        } else if (arg == "--dse") {
            opts.dse = true;
        } else if (arg == "--dse-space") {
            opts.dseSpace = next();
        } else if (arg == "--dse-search") {
            opts.dseSearch = next();
        } else if (arg == "--dse-samples") {
            opts.dseSamples = parseInt("--dse-samples", next());
            if (opts.dseSamples < 1)
                fatal("--dse-samples expects a positive integer");
        } else if (arg == "--dse-rounds") {
            opts.dseRounds = parseInt("--dse-rounds", next());
            if (opts.dseRounds < 1)
                fatal("--dse-rounds expects a positive integer");
        } else if (arg == "--dse-seed") {
            const std::string text = next();
            const int64_t seed = parseInt("--dse-seed", text);
            if (seed < 0)
                fatal("--dse-seed expects a non-negative integer "
                      "(got '" +
                      text + "')");
            opts.dseSeed = static_cast<uint64_t>(seed);
        } else if (arg == "--invocations") {
            opts.invocations = parseInt("--invocations", next());
            if (opts.invocations < 1)
                fatal("--invocations expects a positive integer");
        } else if (arg == "--fault-rate") {
            opts.faultRate = parseDouble("--fault-rate", next());
        } else if (arg == "--fault-seed") {
            // Seeds are uint64, but a bare '-1' silently wrapping to
            // 2^64-1 is a typo, not a request: reject negatives.
            const std::string text = next();
            const int64_t seed = parseInt("--fault-seed", text);
            if (seed < 0)
                fatal("--fault-seed expects a non-negative integer "
                      "(got '" +
                      text + "')");
            opts.faultSeed = static_cast<uint64_t>(seed);
        } else if (arg == "--stream") {
            opts.streamJobs = parseInt("--stream", next());
            if (opts.streamJobs < 1)
                fatal("--stream expects a positive job count");
        } else if (arg == "--arrival") {
            opts.arrival = next();
        } else if (arg == "--max-pending") {
            opts.streamMaxPending = parseInt("--max-pending", next());
            if (opts.streamMaxPending < 0)
                fatal("--max-pending expects a non-negative integer");
        } else if (arg == "--deadline-factor") {
            opts.deadlineFactor =
                parseDouble("--deadline-factor", next());
        } else if (arg == "--deadline-policy") {
            opts.deadlinePolicy = next();
        } else if (arg == "--connect") {
            opts.connectPath = next();
        } else if (arg == "--dump") {
            opts.dump = true;
        } else if (arg == "--metrics") {
            opts.metrics = true;
        } else if (arg == "--metrics-json") {
            opts.metrics = true;
            opts.metricsJson = true;
        } else if (arg == "--metrics-delta") {
            opts.metrics = true;
            opts.metricsDelta = true;
        } else if (arg == "--request-id") {
            opts.requestId = next();
        } else if (arg == "-j" || arg == "--jobs") {
            opts.jobs = static_cast<int>(parseInt("--jobs", next()));
            if (opts.jobs < 0)
                fatal("--jobs expects a non-negative integer");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs =
                static_cast<int>(parseInt("--jobs", arg.substr(7)));
            if (opts.jobs < 0)
                fatal("--jobs expects a non-negative integer");
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = static_cast<int>(
                parseInt("-j", arg.substr(2))); // -jN combined form
            if (opts.jobs < 0)
                fatal("-j expects a non-negative integer");
        } else if (arg == "--trace") {
            opts.tracePath = next();
        } else if (arg == "--list-targets") {
            opts.listTargets = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            fatal("unknown option " + arg);
        } else {
            opts.files.push_back(arg);
        }
    }
    opts.jobs = core::resolveJobs(opts.jobs);
    if (opts.profile || !opts.profileJsonPath.empty()) {
        if (opts.target.empty())
            fatal("--profile requires --target (profiles are attributed "
                  "over the compiled accelerator partitions)");
        opts.simulate = true;
    }
    if (opts.streamJobs > 0) {
        if (opts.target.empty())
            fatal("--stream requires --target (jobs are compiled "
                  "programs)");
        opts.simulate = true;
    }
    if (opts.dse) {
        if (opts.target.empty())
            fatal("--dse requires --target (the search sweeps the "
                  "compiled accelerator partitions)");
        if (opts.profile || !opts.profileJsonPath.empty() ||
            opts.streamJobs > 0)
            fatal("--dse is its own execution mode; it does not combine "
                  "with --profile/--profile-json/--stream");
    }
    if ((opts.dump || opts.metrics || !opts.requestId.empty()) &&
        opts.connectPath.empty())
        fatal("--dump/--metrics/--request-id are service telemetry "
              "surfaces; they require --connect");
    if ((opts.dump || opts.metrics) && !opts.files.empty())
        fatal("--dump/--metrics are stand-alone admin requests; they do "
              "not take input files");
    if (!opts.connectPath.empty()) {
        if (opts.target.empty() && !opts.dump && !opts.metrics)
            fatal("--connect requires --target (the service executes "
                  "compile/simulate/profile requests)");
        if (opts.formatSource || opts.printIr || opts.dot || opts.json ||
            opts.stats || opts.listTargets)
            fatal("--connect supports only the compile/simulate/profile "
                  "path (no --format/--print-ir/--dot/--json/--stats/"
                  "--list-targets)");
        if (opts.streamJobs > 0)
            fatal("--stream runs locally; it is not available with "
                  "--connect");
        if (!opts.tracePath.empty())
            fatal("--trace records the local pipeline; it is not "
                  "available with --connect");
    }
    return opts;
}

/** Parses "poisson:RATE" / "closed:CLIENTS[:THINK_S]" into @p config. */
void
parseArrival(const std::string &spec, soc::StreamConfig &config)
{
    const auto colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    const std::string rest =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (kind == "poisson") {
        config.arrival = soc::ArrivalModel::Poisson;
        if (rest.empty())
            fatal("--arrival poisson:RATE needs a rate in jobs/s");
        config.arrivalRate = parseDouble("--arrival", rest);
    } else if (kind == "closed") {
        config.arrival = soc::ArrivalModel::ClosedLoop;
        if (!rest.empty()) {
            const auto colon2 = rest.find(':');
            config.clients = static_cast<int>(parseInt(
                "--arrival", rest.substr(0, colon2)));
            if (colon2 != std::string::npos) {
                config.thinkSeconds =
                    parseDouble("--arrival", rest.substr(colon2 + 1));
            }
        }
    } else {
        fatal("--arrival expects poisson:RATE or closed:CLIENTS[:THINK] "
              "(got '" +
              spec + "')");
    }
}

soc::DeadlinePolicy
parseDeadlinePolicy(const std::string &word)
{
    if (word == "continue") return soc::DeadlinePolicy::Continue;
    if (word == "shed") return soc::DeadlinePolicy::Shed;
    if (word == "abort") return soc::DeadlinePolicy::Abort;
    fatal("--deadline-policy expects continue|shed|abort (got '" + word +
          "')");
}

std::string
readInput(const std::string &file)
{
    if (file == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        return buffer.str();
    }
    std::ifstream in(file);
    if (!in)
        fatal("cannot open '" + file + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * The service request equivalent to this pmc invocation for one input.
 * Local execution and --connect build the *same* request and run it
 * through the *same* service::runRequest(), which is what makes their
 * outputs byte-identical.
 */
service::Request
requestFromOptions(const Options &opts, const std::string &file,
                   std::string source)
{
    service::Request req;
    if (opts.dse) {
        req.verb = service::Verb::Dse;
    } else if (opts.streamJobs > 0) {
        req.verb = service::Verb::Compile; // stream drives the SoC itself
    } else if (opts.profile) {
        req.verb = service::Verb::Profile;
    } else if (opts.simulate) {
        req.verb = service::Verb::Simulate;
    } else {
        req.verb = service::Verb::Compile;
    }
    req.file = file;
    req.source = std::move(source);
    req.entry = opts.entry;
    req.params = opts.params;
    req.optimize = opts.optimize;
    req.target = opts.target;
    req.schedule = opts.schedule;
    req.invocations = opts.invocations;
    req.faultRate = opts.faultRate;
    req.faultSeed = opts.faultSeed;
    req.profileTop = opts.profileTopN;
    req.profileDoc = !opts.profileJsonPath.empty();
    req.dseSpace = opts.dseSpace;
    req.dseSearch = opts.dseSearch;
    req.dseSamples = opts.dseSamples;
    req.dseRounds = opts.dseRounds;
    req.dseSeed = opts.dseSeed;
    return req;
}

/**
 * Shadow full-stack run for --trace: when the user's flags stop short of
 * the SoC (no --target), the rest of the pipeline re-runs purely for the
 * timeline, so a plain `pmc --trace out.json foo.pm` already shows
 * parse -> passes -> lower -> per-partition compile -> virtual-time SoC
 * execution. The program's domain is unknown here, so the common domains
 * are tried in turn and the first that compiles is executed. Output is
 * discarded and failures are swallowed: tracing must never change pmc's
 * observable behavior.
 */
void
traceShadowRun(const Options &opts, const std::string &source)
{
    const auto try_domain = [&](lang::Domain domain) {
        try {
            ir::BuildOptions build;
            build.entry = opts.entry;
            build.paramConsts = opts.params;
            auto graph = ir::compileToSrdfg(source, build);
            pass::standardPipeline().runToFixpoint(*graph);
            const auto registry = target::standardRegistry();
            lower::lowerGraph(*graph, registry.supportedOpsByDomain(),
                              domain);
            const auto compiled =
                lower::compileProgram(*graph, registry, domain);
            target::WorkloadProfile profile;
            profile.invocations = opts.invocations;
            soc::SocRuntime().execute(compiled, profile);
            return true;
        } catch (...) {
            return false;
        }
    };
    using lang::Domain;
    for (const Domain domain : {Domain::DA, Domain::GA, Domain::DSP,
                                Domain::RBT, Domain::DL}) {
        if (try_domain(domain))
            return;
    }
}

/** Writes @p doc to @p path (binary, no transformation). */
void
writeProfileDoc(const std::string &path, const std::string &doc)
{
    std::ofstream json_out(path, std::ios::binary);
    if (!json_out)
        fatal("cannot open '" + path + "' for writing");
    json_out << doc;
}

/**
 * Compiles one input and renders its stdout/stderr into strings, so
 * parallel multi-file runs can replay the streams in input order.
 */
int
runFile(const Options &opts, const std::string &file, std::string &out,
        std::string &err)
{
    const std::string source = readInput(file);

    // Pre-flight syntax check with statement-level error recovery so one
    // run surfaces *every* syntax error, not just the first.
    if (service::preflightDiagnostics(source, err))
        return 1;

    if (opts.formatSource) {
        const auto program = lang::parse(source);
        lang::analyze(program, opts.entry);
        out += lang::formatProgram(program);
        return 0;
    }

    // The display graph (srDFG printing, stats, Graphviz, JSON, and the
    // no-flags fallback) is built only when something consumes it; a
    // pure --target run goes straight through the compile cache without
    // paying a second front-end pass.
    const bool want_display = opts.stats || opts.printIr || opts.dot ||
                              opts.json || opts.target.empty();
    std::unique_ptr<ir::Graph> graph;
    if (want_display) {
        ir::BuildOptions build;
        build.entry = opts.entry;
        build.paramConsts = opts.params;
        graph = ir::compileToSrdfg(source, build);
        if (opts.optimize) {
            auto pipeline = pass::standardPipeline();
            for (const auto &result : pipeline.runToFixpoint(*graph)) {
                if (result.changed)
                    err += format("pmc: pass %s changed the graph\n",
                                  result.name.c_str());
            }
        }
    }

    bool did_something = false;
    if (opts.stats) {
        out += ir::graphStats(*graph) + "\n";
        did_something = true;
    }
    if (opts.printIr) {
        out += ir::printGraph(*graph);
        did_something = true;
    }
    if (opts.dot) {
        out += ir::toDot(*graph);
        did_something = true;
    }
    if (opts.json) {
        out += ir::toJson(*graph) + "\n";
        did_something = true;
    }
    if (!opts.target.empty()) {
        const auto req = requestFromOptions(opts, file, source);
        const auto exec = service::runRequest(
            req, lower::CompileCache::global());
        out += exec.out;
        if (!opts.profileJsonPath.empty() && opts.streamJobs == 0)
            writeProfileDoc(opts.profileJsonPath, exec.profileJson);
        if (opts.simulate && opts.streamJobs > 0) {
            soc::SocRuntime runtime;
            soc::StreamConfig stream;
            stream.jobs = static_cast<int>(opts.streamJobs);
            stream.seed = opts.faultSeed;
            stream.maxPending = static_cast<int>(opts.streamMaxPending);
            stream.deadlineFactor = opts.deadlineFactor;
            stream.deadlinePolicy =
                parseDeadlinePolicy(opts.deadlinePolicy);
            stream.workers = opts.jobs;
            parseArrival(opts.arrival, stream);
            if (opts.faultRate != 0) { // negative => validation error
                stream.faults.seed = opts.faultSeed;
                stream.faults.accelUnavailableRate = opts.faultRate / 5.0;
                stream.faults.dmaFailureRate = opts.faultRate;
                stream.faults.watchdogRate = opts.faultRate / 2.0;
            }
            soc::StreamJob job;
            job.name = file;
            job.program = exec.program.get();
            job.profile.invocations = opts.invocations;
            const soc::StreamScheduler scheduler(runtime, stream);
            const auto report = scheduler.run({job});
            out += report.str() + "\n";
        } else if (!opts.simulate &&
                   obs::TraceRecorder::global().enabled()) {
            // --trace without --simulate: shadow-execute the compiled
            // program so the trace still carries the virtual SoC
            // timeline. Output is discarded and failures are swallowed —
            // tracing must never change pmc's observable behavior.
            try {
                soc::SocRuntime runtime;
                target::WorkloadProfile profile;
                profile.invocations = opts.invocations;
                runtime.execute(*exec.program, profile);
            } catch (...) {
            }
        }
        did_something = true;
    }
    if (!did_something)
        out += ir::printGraph(*graph);
    if (opts.target.empty() && obs::TraceRecorder::global().enabled())
        traceShadowRun(opts, source);
    return 0;
}

/** runFile with the process-level exception policy applied per input. */
int
runFileGuarded(const Options &opts, const std::string &file,
               std::string &out, std::string &err)
{
    // Exit codes: 0 success, 1 user error (bad program/config, printed as
    // a formatted diagnostic with its source location), 2 internal error.
    try {
        return runFile(opts, file, out, err);
    } catch (const UserError &e) {
        const Diagnostic diag{Severity::Error, e.message(), e.loc()};
        err += format("pmc: %s\n", diag.str().c_str());
        return 1;
    } catch (const InternalError &e) {
        err += format("pmc: %s\n", e.what()); // "internal error: …"
        return 2;
    } catch (const std::exception &e) {
        err += format("pmc: internal error: %s\n", e.what());
        return 2;
    }
}

/**
 * Client mode: ship every input to the pmcd daemon over one connection
 * (pipelined), then replay the responses in input order. The daemon
 * runs the same service::runRequest() as local execution, so stdout/
 * stderr bytes and exit codes match a local run exactly.
 */
int
runConnected(const Options &opts)
{
    service::Client client(opts.connectPath);
    const auto n = static_cast<int64_t>(opts.files.size());
    for (int64_t i = 0; i < n; ++i) {
        auto req = requestFromOptions(opts, opts.files[static_cast<size_t>(i)],
                                      readInput(opts.files[static_cast<size_t>(i)]));
        req.id = i;
        // A client-chosen attribution id tags the daemon-side spans and
        // flight record; with several inputs each request gets its own.
        if (!opts.requestId.empty())
            req.requestId = n == 1 ? opts.requestId
                                   : opts.requestId + "." +
                                         std::to_string(i);
        client.send(req);
    }
    std::vector<service::Response> responses(static_cast<size_t>(n));
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (int64_t remaining = n; remaining > 0;) {
        service::Response resp;
        if (!client.recv(resp))
            fatal("service: connection closed with " +
                  std::to_string(remaining) + " response(s) outstanding");
        if (resp.id < 0 || resp.id >= n || seen[static_cast<size_t>(resp.id)])
            fatal("service: unexpected response id " +
                  std::to_string(resp.id));
        seen[static_cast<size_t>(resp.id)] = true;
        responses[static_cast<size_t>(resp.id)] = std::move(resp);
        --remaining;
    }
    int code = 0;
    for (int64_t i = 0; i < n; ++i) {
        const auto &resp = responses[static_cast<size_t>(i)];
        std::fputs(resp.output.c_str(), stdout);
        if (resp.rejected) {
            std::fprintf(stderr, "pmc: request rejected by server: %s",
                         resp.error.c_str());
            code = std::max(code, 2);
            continue;
        }
        std::fputs(resp.error.c_str(), stderr);
        if (resp.ok && !opts.profileJsonPath.empty())
            writeProfileDoc(opts.profileJsonPath, resp.profileJson);
        code = std::max(code, resp.code);
    }
    return code;
}

/**
 * Admin mode (--dump / --metrics): no work requests, just the daemon's
 * telemetry surfaces. The flight dump and the Prometheus exposition go
 * to stdout verbatim, so `pmc --connect s --metrics | promtool check
 * metrics` and jq over `--dump` both work unmodified.
 */
int
runAdmin(const Options &opts)
{
    service::Client client(opts.connectPath);
    int code = 0;
    if (opts.dump) {
        service::Request req;
        req.verb = service::Verb::Dump;
        req.requestId = opts.requestId;
        const auto resp = client.call(req);
        std::fputs(resp.output.c_str(), stdout);
        std::fputs(resp.error.c_str(), stderr);
        code = std::max(code, resp.code);
    }
    if (opts.metrics) {
        service::Request req;
        req.verb = service::Verb::Metrics;
        req.requestId = opts.requestId;
        req.metricsDelta = opts.metricsDelta;
        const auto resp = client.call(req);
        if (opts.metricsJson) {
            std::fputs(resp.metricsJson.c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::fputs(resp.output.c_str(), stdout);
        }
        std::fputs(resp.error.c_str(), stderr);
        code = std::max(code, resp.code);
    }
    return code;
}

/**
 * Multi-file --stats summary: compile-cache counters plus a per-pass
 * timing table from the metrics registry. Goes to stderr so per-file
 * stdout stays identical to a single-file run.
 */
void
printCompileSummary()
{
    const auto &cache = lower::CompileCache::global();
    std::fprintf(stderr,
                 "pmc: compile cache: %lld hits (%lld coalesced), "
                 "%lld misses, %zu programs\n",
                 static_cast<long long>(cache.hits()),
                 static_cast<long long>(cache.coalesced()),
                 static_cast<long long>(cache.misses()), cache.size());
    const auto snap = obs::MetricsRegistry::global().snapshot();
    const std::string prefix = "pass.";
    const std::string suffix = ".micros";
    bool header = false;
    for (const auto &[name, h] : snap.histograms) {
        if (name.rfind(prefix, 0) != 0 ||
            name.size() <= prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        if (!header) {
            std::fprintf(stderr, "pmc: %-24s %6s %12s %10s %8s\n", "pass",
                         "runs", "total_us", "mean_us", "changed");
            header = true;
        }
        const std::string pass_name = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        const int64_t changed =
            snap.counter(prefix + pass_name + ".changed");
        std::fprintf(stderr, "pmc: %-24s %6lld %12lld %10.1f %8lld\n",
                     pass_name.c_str(), static_cast<long long>(h.count),
                     static_cast<long long>(h.sum), h.mean(),
                     static_cast<long long>(changed));
    }
}

int
run(const Options &opts)
{
    if (opts.listTargets) {
        const auto registry = target::standardRegistry();
        for (const auto &spec : registry.specs()) {
            std::printf("%-14s domain %-4s  %zu supported ops\n",
                        spec.name.c_str(),
                        lang::toString(spec.domain).c_str(),
                        spec.supportedOps.size());
        }
        if (opts.files.empty())
            return 0;
    }
    if (opts.dump || opts.metrics)
        return runAdmin(opts);
    if (opts.files.empty()) {
        usage();
        return 2;
    }
    if (!opts.profileJsonPath.empty() && opts.files.size() > 1)
        fatal("--profile-json supports a single input file (the profile "
              "document identifies one program)");
    if (opts.profile || !opts.profileJsonPath.empty())
        target::setProfilingEnabled(true);
    if (!opts.connectPath.empty())
        return runConnected(opts);
    if (!opts.tracePath.empty())
        obs::TraceRecorder::global().setEnabled(true);

    struct FileResult
    {
        std::string out;
        std::string err;
        int code = 0;
    };
    const auto results = core::parallelMap(
        opts.jobs, static_cast<int64_t>(opts.files.size()),
        [&](int64_t i) {
            FileResult r;
            r.code = runFileGuarded(opts, opts.files[static_cast<size_t>(i)],
                                    r.out, r.err);
            return r;
        });

    int code = 0;
    for (const auto &r : results) {
        std::fputs(r.out.c_str(), stdout);
        std::fputs(r.err.c_str(), stderr);
        code = std::max(code, r.code);
    }
    if (!opts.tracePath.empty())
        obs::writeChromeTrace(obs::TraceRecorder::global(),
                              opts.tracePath);
    if (opts.stats && opts.files.size() > 1)
        printCompileSummary();
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parseArgs(argc, argv));
    } catch (const polymath::UserError &e) {
        const polymath::Diagnostic diag{polymath::Severity::Error,
                                        e.message(), e.loc()};
        std::fprintf(stderr, "pmc: %s\n", diag.str().c_str());
        return 1;
    } catch (const polymath::InternalError &e) {
        std::fprintf(stderr, "pmc: %s\n", e.what()); // "internal error: …"
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pmc: internal error: %s\n", e.what());
        return 2;
    }
}
