/**
 * @file
 * pmc — the PolyMath compiler driver.
 *
 * Compiles a PMLang file through any prefix of the stack and prints the
 * result: the srDFG at all granularities, Graphviz, statistics, the
 * per-accelerator IR after Algorithms 1/2, or a simulated execution on
 * the SoC. `pmc --help` documents the flags; examples/pmlang/ has inputs.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "core/error.h"
#include "core/strings.h"
#include "lower/lower.h"
#include "pmlang/format.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "passes/pass.h"
#include "soc/soc.h"
#include "targets/deco/chain_mapper.h"
#include "targets/tabla/scheduler.h"
#include "srdfg/builder.h"
#include "srdfg/printer.h"
#include "srdfg/serialize.h"
#include "workloads/suite.h"

namespace {

using namespace polymath;

struct Options
{
    std::string file;
    std::string entry = "main";
    std::map<std::string, int64_t> params;
    bool printIr = false;
    bool dot = false;
    bool json = false;
    bool formatSource = false;
    bool stats = false;
    bool optimize = false;
    std::string target;   // domain keyword, e.g. "DA"
    bool simulate = false;
    bool schedule = false;
    int64_t invocations = 1;
    bool listTargets = false;
    double faultRate = 0.0;
    uint64_t faultSeed = 0x5eed;
};

void
usage()
{
    std::fputs(
        "usage: pmc [options] <file.pm | ->\n"
        "\n"
        "  --entry <name>        entry component (default: main)\n"
        "  --param <name>=<int>  bind a scalar param at compile time\n"
        "                        (repeatable)\n"
        "  --print-ir            print the srDFG (all recursion levels)\n"
        "  --dot                 print Graphviz for the top levels\n"
        "  --json                print the srDFG as JSON\n"
        "  --format              pretty-print the program canonically\n"
        "  --stats               print node/depth/op statistics\n"
        "  --optimize            run the standard pass pipeline first\n"
        "  --target <DOMAIN>     lower + translate for the domain's\n"
        "                        accelerator (RBT|GA|DSP|DA|DL, or ALL to\n"
        "                        honor per-statement annotations) and\n"
        "                        print the accelerator program(s)\n"
        "  --simulate            with --target: simulate on the SoC\n"
        "  --schedule            with --target DA/DSP: print the PE list\n"
        "                        schedule / DSP chain mapping\n"
        "  --invocations <n>     invocation count for --simulate\n"
        "  --fault-rate <r>      with --simulate: inject accelerator/DMA/\n"
        "                        watchdog faults at rate r in [0,1] and\n"
        "                        print the reliability report\n"
        "  --fault-seed <n>      seed for deterministic fault injection\n"
        "  --list-targets        print the registered accelerators\n",
        stderr);
}

lang::Domain
domainFromKeyword(const std::string &word)
{
    if (word == "ALL") return lang::Domain::None; // per-statement tags
    if (word == "RBT") return lang::Domain::RBT;
    if (word == "GA") return lang::Domain::GA;
    if (word == "DSP") return lang::Domain::DSP;
    if (word == "DA") return lang::Domain::DA;
    if (word == "DL") return lang::Domain::DL;
    fatal("unknown domain '" + word +
          "' (expected RBT|GA|DSP|DA|DL or ALL)");
}

int64_t
parseInt(const std::string &flag, const std::string &text)
{
    try {
        size_t used = 0;
        const int64_t value = std::stoll(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        fatal(flag + " expects an integer (got '" + text + "')");
    }
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    try {
        size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        fatal(flag + " expects a number (got '" + text + "')");
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--entry") {
            opts.entry = next();
        } else if (arg == "--param") {
            const auto binding = next();
            const auto eq = binding.find('=');
            if (eq == std::string::npos)
                fatal("--param expects name=value");
            opts.params[binding.substr(0, eq)] =
                parseInt("--param", binding.substr(eq + 1));
        } else if (arg == "--print-ir") {
            opts.printIr = true;
        } else if (arg == "--dot") {
            opts.dot = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--format") {
            opts.formatSource = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--optimize") {
            opts.optimize = true;
        } else if (arg == "--target") {
            opts.target = next();
        } else if (arg == "--simulate") {
            opts.simulate = true;
        } else if (arg == "--schedule") {
            opts.schedule = true;
        } else if (arg == "--invocations") {
            opts.invocations = parseInt("--invocations", next());
        } else if (arg == "--fault-rate") {
            opts.faultRate = parseDouble("--fault-rate", next());
        } else if (arg == "--fault-seed") {
            opts.faultSeed =
                static_cast<uint64_t>(parseInt("--fault-seed", next()));
        } else if (arg == "--list-targets") {
            opts.listTargets = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            fatal("unknown option " + arg);
        } else if (opts.file.empty()) {
            opts.file = arg;
        } else {
            fatal("multiple input files given");
        }
    }
    return opts;
}

std::string
readInput(const std::string &file)
{
    if (file == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        return buffer.str();
    }
    std::ifstream in(file);
    if (!in)
        fatal("cannot open '" + file + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int
run(const Options &opts)
{
    if (opts.listTargets) {
        const auto registry = target::standardRegistry();
        for (const auto &spec : registry.specs()) {
            std::printf("%-14s domain %-4s  %zu supported ops\n",
                        spec.name.c_str(),
                        lang::toString(spec.domain).c_str(),
                        spec.supportedOps.size());
        }
        if (opts.file.empty())
            return 0;
    }
    if (opts.file.empty()) {
        usage();
        return 2;
    }

    const std::string source = readInput(opts.file);

    // Pre-flight syntax check with statement-level error recovery so one
    // run surfaces *every* syntax error, not just the first.
    {
        DiagnosticEngine diag;
        lang::parseWithRecovery(source, diag);
        if (!diag.empty())
            std::fputs(diag.str().c_str(), stderr);
        if (diag.hasErrors()) {
            std::fprintf(stderr, "pmc: %zu error(s)\n", diag.errorCount());
            return 1;
        }
    }

    if (opts.formatSource) {
        const auto program = lang::parse(source);
        lang::analyze(program, opts.entry);
        std::printf("%s", lang::formatProgram(program).c_str());
        return 0;
    }
    ir::BuildOptions build;
    build.entry = opts.entry;
    build.paramConsts = opts.params;
    auto graph = ir::compileToSrdfg(source, build);

    if (opts.optimize) {
        auto pipeline = pass::standardPipeline();
        for (const auto &result : pipeline.runToFixpoint(*graph)) {
            if (result.changed)
                std::fprintf(stderr, "pmc: pass %s changed the graph\n",
                             result.name.c_str());
        }
    }

    bool did_something = false;
    if (opts.stats) {
        std::printf("%s\n", ir::graphStats(*graph).c_str());
        did_something = true;
    }
    if (opts.printIr) {
        std::printf("%s", ir::printGraph(*graph).c_str());
        did_something = true;
    }
    if (opts.dot) {
        std::printf("%s", ir::toDot(*graph).c_str());
        did_something = true;
    }
    if (opts.json) {
        std::printf("%s\n", ir::toJson(*graph).c_str());
        did_something = true;
    }
    if (!opts.target.empty()) {
        const auto domain = domainFromKeyword(opts.target);
        const auto registry = target::standardRegistry();
        lower::lowerGraph(*graph, registry.supportedOpsByDomain(), domain);
        const auto compiled =
            lower::compileProgram(*graph, registry, domain);
        std::printf("%s", compiled.str().c_str());
        if (opts.schedule) {
            for (const auto &partition : compiled.partitions) {
                if (partition.accel == "TABLA") {
                    std::printf("TABLA PE schedule:\n%s",
                                target::listSchedule(partition, {})
                                    .str()
                                    .c_str());
                } else if (partition.accel == "DECO") {
                    std::printf("DECO chain mapping:\n%s",
                                target::mapChains(partition, {})
                                    .str()
                                    .c_str());
                }
            }
        }
        if (opts.simulate) {
            soc::SocRuntime runtime;
            if (opts.faultRate != 0) { // negative => validation error
                soc::FaultConfig faults;
                faults.seed = opts.faultSeed;
                faults.accelUnavailableRate = opts.faultRate / 5.0;
                faults.dmaFailureRate = opts.faultRate;
                faults.watchdogRate = opts.faultRate / 2.0;
                runtime.setFaultModel(soc::FaultModel(faults));
            }
            target::WorkloadProfile profile;
            profile.invocations = opts.invocations;
            const auto result = runtime.execute(compiled, profile);
            std::printf("simulated: %s\n", result.total.str().c_str());
            if (opts.faultRate > 0) {
                std::printf("reliability: %s\n",
                            result.reliability.str().c_str());
            }
        }
        did_something = true;
    }
    if (!did_something)
        std::printf("%s", ir::printGraph(*graph).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit codes: 0 success, 1 user error (bad program/config, printed as
    // a formatted diagnostic with its source location), 2 internal error.
    try {
        return run(parseArgs(argc, argv));
    } catch (const polymath::UserError &e) {
        const polymath::Diagnostic diag{polymath::Severity::Error,
                                        e.message(), e.loc()};
        std::fprintf(stderr, "pmc: %s\n", diag.str().c_str());
        return 1;
    } catch (const polymath::InternalError &e) {
        std::fprintf(stderr, "pmc: %s\n", e.what()); // "internal error: …"
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pmc: internal error: %s\n", e.what());
        return 2;
    }
}
