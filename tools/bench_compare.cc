/**
 * @file
 * Perf-regression gate: diffs two bench artifacts (report/artifact.h).
 *
 *   bench_compare [--rel-tol R] [--tol metric=R]... baseline.json current.json
 *
 * Exit codes: 0 all metrics within tolerance, 1 regression (any metric
 * out of tolerance or present on only one side), 2 usage / IO error.
 * check.sh runs this against the checked-in baselines in bench/baselines/.
 *
 * `polymath-dse/1` artifacts (the autotuner's output, dse/artifact.h)
 * are detected by schema and flattened to bench rows, so the same
 * tolerance machinery gates DSE sweeps.
 */
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "dse/artifact.h"
#include "report/artifact.h"

namespace {

using polymath::report::BenchArtifact;
using polymath::report::CompareOptions;
using polymath::report::CompareResult;

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: bench_compare [--rel-tol R] [--tol metric=R]... \\\n"
        "                     baseline.json current.json\n"
        "\n"
        "Diffs two bench artifacts written by a bench binary's --json\n"
        "flag. Every metric row must match within a two-sided relative\n"
        "tolerance; rows present on only one side always fail.\n"
        "\n"
        "  --rel-tol R     default tolerance for all metrics (default\n"
        "                  1e-9: the cost models are deterministic)\n"
        "  --tol name=R    per-metric override, e.g. --tol speedup=0.05\n"
        "\n"
        "exit: 0 within tolerance, 1 regression, 2 usage/IO error\n");
}

double
parseTolValue(const char *text, const char *flag)
{
    double value = 0.0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec != std::errc{} || ptr != end || value < 0)
        polymath::fatal(std::string(flag) +
                        " expects a non-negative number (got '" + text +
                        "')");
    return value;
}

// Loads either artifact flavor: polymath-dse/1 files are flattened
// through toBenchArtifact() so both sides diff as bench rows.
BenchArtifact
loadArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        polymath::fatal("cannot read artifact '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const polymath::json::Value root = polymath::json::parse(text);
    const std::string schema =
        root.has("schema") ? root.at("schema").str() : "";
    if (schema == polymath::dse::DseArtifact::kSchema)
        return polymath::dse::DseArtifact::fromJson(text)
            .toBenchArtifact();
    return BenchArtifact::fromJson(text);
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions options;
    std::vector<std::string> paths;
    try {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--help") == 0 ||
                std::strcmp(arg, "-h") == 0) {
                usage(stdout);
                return 0;
            }
            if (std::strcmp(arg, "--rel-tol") == 0) {
                if (i + 1 >= argc)
                    polymath::fatal("missing value after --rel-tol");
                options.relTol = parseTolValue(argv[++i], "--rel-tol");
            } else if (std::strcmp(arg, "--tol") == 0) {
                if (i + 1 >= argc)
                    polymath::fatal("missing value after --tol");
                const std::string spec = argv[++i];
                const size_t eq = spec.find('=');
                if (eq == std::string::npos || eq == 0)
                    polymath::fatal("--tol expects metric=R (got '" + spec +
                                    "')");
                options.metricTol[spec.substr(0, eq)] =
                    parseTolValue(spec.c_str() + eq + 1, "--tol");
            } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
                polymath::fatal(std::string("unknown flag '") + arg + "'");
            } else {
                paths.push_back(arg);
            }
        }
        if (paths.size() != 2) {
            usage(stderr);
            return 2;
        }

        const BenchArtifact baseline = loadArtifact(paths[0]);
        const BenchArtifact current = loadArtifact(paths[1]);
        const CompareResult result =
            polymath::report::compareArtifacts(baseline, current, options);

        if (result.ok()) {
            std::printf("bench_compare: %s vs %s: %s", paths[0].c_str(),
                        paths[1].c_str(), result.summary().c_str());
            return 0;
        }
        std::fprintf(stderr,
                     "bench_compare: REGRESSION\n"
                     "  baseline: %s (%s, git %s)\n"
                     "  current:  %s (%s, git %s)\n%s",
                     paths[0].c_str(), baseline.name.c_str(),
                     baseline.git.c_str(), paths[1].c_str(),
                     current.name.c_str(), current.git.c_str(),
                     result.summary().c_str());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_compare: %s\n", e.what());
        return 2;
    }
}
